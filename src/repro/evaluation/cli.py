"""``csb-figures`` — regenerate the paper's evaluation from the command line.

Examples::

    csb-figures --list
    csb-figures fig3c fig5a
    csb-figures --all --out results/ --jobs 4
    csb-figures --all --check expected_results --no-cache
    csb-figures cached-crossover --mem mshrs=8 --mem miss_latency=400
    csb-figures fig3c --trace-events trace.jsonl --metrics-out metrics.json
    csb-figures profile fig3c
    csb-figures lint --format json
    csb-figures replay --trace synth:n=10000,seed=7,gap=40,devices=2
    csb-figures replay --trace logs/io.trace --discipline lock --cores 2

Sweeps fan out over ``--jobs`` worker processes and reuse a
content-addressed result cache under ``--cache-dir`` (disable with
``--no-cache``).  Both are pure speedups: output is byte-identical to a
serial, uncached run.

Observability: ``--trace-events FILE`` streams every simulator event of
every job as JSONL; ``--metrics-out FILE`` writes an end-of-run metrics
snapshot per job.  Either flag forces jobs to simulate fresh and
serially (sinks cannot be fed from the cache), but the printed tables
are byte-identical — tracing is passive.  The ``profile`` subcommand
reruns one representative point per scheme of a figure experiment and
prints a bus-cycle accounting table (see docs/observability.md).

The ``lint`` subcommand statically checks every registered workload
kernel against the CSB protocol rules and exits non-zero on any finding
(see docs/static_analysis.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.common.tables import Table
from repro.evaluation.experiments import experiment_ids, run_experiment
from repro.evaluation.runner import (
    ResultCache,
    SweepRunner,
    default_cache_dir,
    experiment_key,
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csb-figures",
        description=(
            "Regenerate the tables behind every figure panel of "
            "'Improving I/O Performance with a Conditional Store Buffer' "
            "(MICRO 1998)."
        ),
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. fig3c)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--out", metavar="DIR", help="also write each table as CSV into DIR"
    )
    parser.add_argument(
        "--precision", type=int, default=2, help="decimal places (default 2)"
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="print tables as GitHub-flavoured markdown",
    )
    parser.add_argument(
        "--check",
        metavar="DIR",
        help=(
            "regression mode: regenerate each experiment and diff its CSV "
            "against DIR/<id>.csv; exit 1 on any mismatch"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=os.cpu_count() or 1,
        help="worker processes per sweep (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=default_cache_dir(),
        help=(
            "content-addressed result cache directory "
            "(default: $CSB_CACHE_DIR or ~/.cache/csb-figures)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--tier",
        choices=("detailed", "sampled"),
        default="detailed",
        help=(
            "execution tier: 'detailed' (default) is the full "
            "cycle-accurate model; 'sampled' alternates functional "
            "fast-forward with cycle-accurate measurement windows "
            "(faster, statistical — see docs/modeling.md)"
        ),
    )
    parser.add_argument(
        "--sample",
        action="append",
        metavar="KEY=VALUE",
        help=(
            "override a sampling parameter (repeatable; implies "
            "--tier sampled): ff_instructions, warmup_cycles, "
            "window_cycles, confidence"
        ),
    )
    parser.add_argument(
        "--mem",
        action="append",
        metavar="KEY=VALUE",
        help=(
            "enable the non-blocking data cache and override a "
            "MemoryConfig parameter (repeatable): size_bytes, line_size, "
            "associativity, hit_latency, miss_latency, mshrs, "
            "write_policy, bus_traffic; '--mem enabled=true' enables it "
            "with the defaults"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-experiment progress on stderr",
    )
    parser.add_argument(
        "--trace-events",
        metavar="FILE",
        help=(
            "stream every simulator event of every sweep job to FILE as "
            "JSONL (forces fresh, serial simulation; tables unchanged)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help=(
            "write an end-of-run metrics snapshot per sweep job to FILE "
            "as JSON (forces fresh, serial simulation; tables unchanged)"
        ),
    )
    return parser


def _section_from_flags(cls, items, flag: str, **defaults):
    """Fold repeatable ``KEY=VALUE`` flags into one config-section
    instance — the single parser behind ``--sample`` and ``--mem``
    (``--tier sampled`` feeds the same path with no flags).  ``defaults``
    fill in fields the flags left unset (e.g. ``enabled=True``)."""
    from repro.common.errors import ConfigError
    from repro.common.serialize import parse_field_assignments

    try:
        fields = parse_field_assignments(cls, items or [], flag)
        for key, value in defaults.items():
            fields.setdefault(key, value)
        return cls(**fields)
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}")


def _sampling_from_args(args: argparse.Namespace):
    """The :class:`SamplingConfig` override the flags describe, or None."""
    if args.tier != "sampled" and not args.sample:
        return None
    from repro.common.config import SamplingConfig

    return _section_from_flags(
        SamplingConfig, args.sample, "--sample", enabled=True
    )


def _mem_from_args(args: argparse.Namespace):
    """The partial ``mem`` overrides dict ``--mem`` describes, or None.

    Any ``--mem`` flag enables the data cache unless it explicitly says
    ``enabled=false`` (useful to assert the cache-off baseline).  Only
    the fields actually given travel in the override, so sweeps that
    vary the line size keep each point's own ``mem.line_size``.
    """
    if not args.mem:
        return None
    from repro.common.config import MemoryConfig
    from repro.common.errors import ConfigError
    from repro.common.serialize import parse_field_assignments

    try:
        fields = parse_field_assignments(MemoryConfig, args.mem, "--mem")
        fields.setdefault("enabled", True)
        MemoryConfig(**fields)  # fail fast on invalid combinations
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}")
    return fields


def _make_runner(
    args: argparse.Namespace, trace_stream=None
) -> SweepRunner:
    if args.jobs < 1:
        raise SystemExit("error: --jobs must be at least 1")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None
    if not args.quiet and sys.stderr.isatty():
        def progress(done: int, total: int) -> None:
            print(f"\r  {done}/{total} points", end="", file=sys.stderr)
            if done == total:
                print(file=sys.stderr)
    observer_factory = None
    if trace_stream is not None:
        from repro.observability.sinks import JsonlSink

        def observer_factory(job):
            return [JsonlSink(trace_stream, extra={"job": job.name})]

    mem = _mem_from_args(args)
    overrides = {"mem": mem} if mem is not None else None
    log = (lambda message: None) if args.quiet else None
    return SweepRunner(
        jobs=args.jobs,
        cache=cache,
        progress=progress,
        observer_factory=observer_factory,
        collect_metrics=bool(args.metrics_out),
        sampling=_sampling_from_args(args),
        overrides=overrides,
        log=log,
    )


def _table_variant(runner: SweepRunner) -> str:
    """Whole-table cache variant tag: the serialized sampling and config
    overrides, so sampled/cached-memory tables never alias detailed
    ones in the whole-table cache."""
    import dataclasses

    parts = []
    if runner.sampling is not None:
        parts.append(
            "sampled:"
            + json.dumps(dataclasses.asdict(runner.sampling), sort_keys=True)
        )
    if runner.overrides:
        parts.append(
            "overrides:" + json.dumps(runner.overrides, sort_keys=True)
        )
    return ";".join(parts)


def _resolve_table(experiment_id: str, runner: SweepRunner) -> Table:
    """Run one experiment through the runner, with a whole-table cache in
    front for the studies that cannot be decomposed into SimJobs.  In
    observed mode (tracing/metrics) the table cache is bypassed so every
    job actually simulates."""
    cache = None if runner.observed else runner.cache
    key = experiment_key(experiment_id, variant=_table_variant(runner))
    if cache is not None:
        cached = cache.get_table(key)
        if cached is not None:
            return cached
    table = run_experiment(experiment_id, runner)
    if cache is not None:
        cache.put_table(key, table, name=experiment_id)
    return table


def _report(runner: SweepRunner, elapsed: float, quiet: bool) -> None:
    if quiet:
        return
    print(
        f"[{runner.simulated} simulated, {runner.cache_hits} cached, "
        f"{elapsed:.1f}s]",
        file=sys.stderr,
    )


def _profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csb-figures profile",
        description=(
            "Rerun one representative point per combining scheme of a "
            "figure experiment with bus-cycle accounting attached, and "
            "print where every bus cycle went (address / data / wait / "
            "turnaround / idle)."
        ),
    )
    parser.add_argument(
        "experiments", nargs="+", help="figure ids (fig3a-i, fig4a-e, fig5a/b)"
    )
    parser.add_argument(
        "--precision", type=int, default=2, help="decimal places (default 2)"
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="print tables as GitHub-flavoured markdown",
    )
    return parser


def _profile_main(argv: List[str]) -> int:
    from repro.common.errors import ConfigError
    from repro.observability.profile import profile_table

    args = _profile_parser().parse_args(argv)
    for experiment_id in args.experiments:
        try:
            table = profile_table(experiment_id)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.markdown:
            print(table.to_markdown(precision=args.precision))
        else:
            print(table.render(precision=args.precision))
    return 0


def _lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csb-figures lint",
        description=(
            "Statically check every registered workload kernel, across "
            "its parameter sweep, against the CSB protocol rules "
            "(lock discipline, membar placement, combining windows, "
            "conditional-flush retry).  Exits 1 on any finding."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="NAME",
        help=(
            "only lint targets whose name contains NAME "
            "(default: every registered target)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list target names and exit"
    )
    parser.add_argument(
        "--rules", action="store_true", help="list rule ids and exit"
    )
    return parser


def _lint_main(argv: List[str]) -> int:
    from repro.analysis import (
        all_rules,
        findings_to_json,
        iter_lint_groups,
        iter_lint_targets,
        lint_group,
        lint_source,
    )

    args = _lint_parser().parse_args(argv)
    if args.rules:
        for rule in all_rules():
            print(rule)
        return 0
    targets = [
        target
        for target in iter_lint_targets()
        if not args.targets
        or any(pattern in target.name for pattern in args.targets)
    ]
    groups = [
        group
        for group in iter_lint_groups()
        if not args.targets
        or any(pattern in group.name for pattern in args.targets)
    ]
    if args.list:
        for target in targets:
            print(target.name)
        for group in groups:
            print(f"{group.name} (group)")
        return 0
    if not targets and not groups:
        print("error: no lint targets match", file=sys.stderr)
        return 2
    findings = []
    for target in targets:
        findings.extend(
            lint_source(target.source, context=target.context, name=target.name)
        )
    for group in groups:
        findings.extend(lint_group(group.targets))
    if args.format == "json":
        print(findings_to_json(findings))
    else:
        for finding in findings:
            print(finding.render())
        print(
            f"[{len(targets)} programs and {len(groups)} group(s) linted, "
            f"{len(findings)} finding(s)]",
            file=sys.stderr,
        )
    return 1 if findings else 0


def _replay_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csb-figures replay",
        description=(
            "Stream an I/O trace through the simulator — window by "
            "window, lowered to the chosen store discipline — and report "
            "throughput, tail latency, and per-device descriptor-ring "
            "statistics.  Traces are either files in the '#csb-trace v1' "
            "format or synthetic specs generated on the fly."
        ),
    )
    parser.add_argument(
        "--trace",
        required=True,
        metavar="FILE|synth:SPEC",
        help=(
            "trace source: a '#csb-trace v1' file, or 'synth:' followed "
            "by n=,seed=,gap=[,arrival=,burst=,devices=,skew=,sizes=] "
            "(e.g. synth:n=10000,seed=7,gap=40,devices=4,skew=1.0)"
        ),
    )
    parser.add_argument(
        "--discipline",
        choices=("csb", "lock", "uncached"),
        default="csb",
        help="store discipline the trace is lowered to (default csb)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=256,
        help="records compiled per replay window (default 256)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=1,
        help="simulated cores sharing the replay (default 1)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=0,
        help=(
            "descriptor rings to attach (default: the synth spec's "
            "device count, or 1 for file traces)"
        ),
    )
    parser.add_argument(
        "--max-cycles",
        type=int,
        default=2_000_000_000,
        help="bus-cycle budget before the replay aborts (default 2e9)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="also write the full MetricsSnapshot as JSON to FILE",
    )
    return parser


def _replay_main(argv: List[str]) -> int:
    from repro.common.config import SystemConfig
    from repro.common.errors import ReproError
    from repro.workloads.spec import TraceWorkload
    from repro.workloads.traces import TraceReplay

    args = _replay_parser().parse_args(argv)
    try:
        workload = TraceWorkload(
            name="cli-replay",
            source=args.trace,
            discipline=args.discipline,
            window=args.window,
            devices=args.devices,
        )
        config = SystemConfig(num_cores=args.cores)
        replay = TraceReplay(workload, config, max_cycles=args.max_cycles)
        started = time.monotonic()
        result = replay.run()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - started
    cpu_cycles = result.cycles * config.bus.cpu_ratio
    rate = result.replayed / elapsed if elapsed > 0 else 0.0
    report = {
        "trace": args.trace,
        "discipline": args.discipline,
        "cores": args.cores,
        "window": args.window,
        "transactions": result.replayed,
        "windows": result.windows,
        "bus_cycles": result.cycles,
        "cpu_cycles": cpu_cycles,
        "latency": result.latency,
        "latency_mean": round(result.histogram.mean, 2),
        "latency_max": result.histogram.max,
        "rings": [
            {
                "device": index,
                "enqueued": ring.enqueued,
                "drops": ring.drops,
                "high_water": ring.high_water,
                "mean_occupancy": round(ring.mean_occupancy(), 2),
            }
            for index, ring in enumerate(result.rings)
        ],
        "wall_seconds": round(elapsed, 3),
        "transactions_per_second": round(rate, 1),
    }
    if args.metrics_out and result.metrics is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(result.metrics.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[wrote {args.metrics_out}]", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"replayed {result.replayed} transactions in {result.windows} "
        f"window(s) [{args.discipline}, {args.cores} core(s)]"
    )
    print(
        f"  {result.cycles} bus cycles ({cpu_cycles} CPU cycles), "
        f"{elapsed:.2f}s wall ({rate:.0f} txn/s)"
    )
    if result.latency:
        tail = ", ".join(
            f"{label}={value}" for label, value in result.latency.items()
        )
        print(
            f"  latency [CPU cycles]: {tail}, "
            f"mean={report['latency_mean']}, max={report['latency_max']}"
        )
    for entry in report["rings"]:
        print(
            f"  ring {entry['device']}: {entry['enqueued']} enqueued, "
            f"{entry['drops']} dropped, high water {entry['high_water']}, "
            f"mean occupancy {entry['mean_occupancy']}"
        )
    return 0


def _mc_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csb-figures mc",
        description=(
            "Bounded model checker for the CSB protocol: exhaustively "
            "explore the cross-core interleavings of the litmus suite "
            "against an abstract spec of cores + shared CSB.  Exits 1 on "
            "any violation or replay divergence."
        ),
    )
    parser.add_argument(
        "tests",
        nargs="*",
        metavar="NAME",
        help=(
            "only check litmus tests whose name contains NAME "
            "(default: the whole suite)"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list litmus test names and exit"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the csb-mc-1 JSON report"
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=50_000,
        help="state budget per test (default 50000)",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=80,
        help="interleaving depth budget (default 80)",
    )
    parser.add_argument(
        "--spec-mutation",
        metavar="MUTATION",
        default=None,
        help=(
            "check against a deliberately broken spec variant "
            "(CI uses this to prove the checker catches seeded bugs)"
        ),
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help=(
            "also replay every enumerated schedule of each deterministic "
            "test through the detailed simulator, comparing state "
            "op-for-op against the spec"
        ),
    )
    parser.add_argument(
        "--max-schedules",
        type=int,
        default=25,
        help="replay at most this many schedules per test (default 25)",
    )
    parser.add_argument(
        "--promote",
        metavar="DIR",
        default=None,
        help=(
            "write each violating test's counterexample as a regression-"
            "workload JSON file under DIR"
        ),
    )
    return parser


def _mc_main(argv: List[str]) -> int:
    import json as json_module

    from repro.analysis.mc import (
        MUTATIONS,
        Budget,
        litmus_tests,
        promote_violation,
        replay_test,
        results_to_json,
        write_counterexamples,
    )
    from repro.common.errors import ConfigError

    args = _mc_parser().parse_args(argv)
    tests = [
        test
        for test in litmus_tests()
        if not args.tests
        or any(pattern in test.name for pattern in args.tests)
    ]
    if args.list:
        for test in tests:
            print(test.name)
        return 0
    if not tests:
        print("error: no litmus tests match", file=sys.stderr)
        return 2
    if args.spec_mutation is not None and args.spec_mutation not in MUTATIONS:
        print(
            f"error: unknown mutation {args.spec_mutation!r} "
            f"(have: {', '.join(MUTATIONS)})",
            file=sys.stderr,
        )
        return 2
    try:
        budget = Budget(max_states=args.max_states, max_depth=args.max_depth)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    results = [
        test.run(budget, mutation=args.spec_mutation) for test in tests
    ]
    replays = []
    if args.replay:
        for test in tests:
            if not test.replayable:
                continue
            replays.append(
                replay_test(test, budget, max_schedules=args.max_schedules)
            )

    violating = [r for r in results if not r.ok]
    diverging = [r for r in replays if not r.ok]
    if args.promote:
        by_name = {test.name: test for test in tests}
        promoted = [
            promote_violation(
                by_name[result.test],
                result.violations[0],
                mutation=args.spec_mutation or "",
            )
            for result in violating
        ]
        for path in write_counterexamples(promoted, args.promote):
            print(f"promoted: {path}", file=sys.stderr)

    if args.json:
        report = json_module.loads(results_to_json(results, budget))
        if args.replay:
            report["replays"] = [r.to_dict() for r in replays]
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        for result in results:
            status = "ok" if result.ok else "VIOLATED"
            complete = "" if result.complete else " (budget truncated)"
            print(
                f"{result.test}: {status} [{result.states} states, "
                f"{result.transitions} transitions]{complete}"
            )
            for violation in result.violations:
                print(violation.render())
        for replay in replays:
            status = "ok" if replay.ok else "DIVERGED"
            print(
                f"{replay.test}: replay {status} [{replay.schedules} "
                f"schedules, {replay.steps} ops]"
            )
            for divergence in replay.divergences:
                print(f"  {divergence.render()}")
        print(
            f"[{len(results)} litmus tests checked, "
            f"{sum(len(r.violations) for r in results)} violation(s), "
            f"{len(replays)} replayed]",
            file=sys.stderr,
        )
    return 1 if violating or diverging else 0


def _campaign_parser() -> argparse.ArgumentParser:
    from repro.evaluation.service import default_state_dir

    parser = argparse.ArgumentParser(
        prog="csb-figures campaign",
        description=(
            "Run, serve, and inspect campaign manifests: content-"
            "addressed bundles of simulation jobs executed by a "
            "crash-tolerant worker pool and published over a stdlib "
            "HTTP/JSON API (see docs/campaigns.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers",
            type=int,
            default=2,
            metavar="N",
            help="worker processes in the pool (default 2)",
        )
        command.add_argument(
            "--cache-dir",
            metavar="DIR",
            default=default_cache_dir(),
            help=(
                "shared result cache directory "
                "(default: $CSB_CACHE_DIR or ~/.cache/csb-figures)"
            ),
        )
        command.add_argument(
            "--no-cache",
            action="store_true",
            help="neither read nor write the result cache",
        )
        command.add_argument(
            "--state-dir",
            metavar="DIR",
            default=default_state_dir(),
            help=(
                "campaign store directory "
                "(default: $CSB_STATE_DIR or ~/.local/state/csb-campaigns)"
            ),
        )

    run = sub.add_parser(
        "run",
        help="execute one manifest through the worker pool",
        description=(
            "Execute a campaign manifest (a JSON file, or '-' for stdin) "
            "through the worker pool, store its csb-campaign-1 results "
            "document under the state directory, and print it.  SIGTERM "
            "drains gracefully: in-flight jobs finish, the rest are "
            "reported 'drained'."
        ),
    )
    run.add_argument(
        "manifest", metavar="FILE", help="manifest JSON path, or '-'"
    )
    common(run)
    run.add_argument(
        "--max-requeues",
        type=int,
        default=None,
        metavar="N",
        help="crash-requeue budget per job (default 2)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve the campaign HTTP/JSON API",
        description=(
            "Serve GET /campaigns, GET /campaigns/<key>, "
            "GET /campaigns/<key>/results and POST /campaigns, executing "
            "queued campaigns in the background.  SIGTERM/SIGINT drain "
            "and shut down."
        ),
    )
    common(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8731, help="bind port (default 8731)"
    )

    status = sub.add_parser(
        "status",
        help="inspect stored campaigns",
        description=(
            "With no key: list every stored campaign.  With a key: print "
            "that campaign's status document as JSON."
        ),
    )
    status.add_argument(
        "key", nargs="?", default=None, help="campaign key (64 hex chars)"
    )
    common(status)

    sub.add_parser(
        "example",
        help="print an example campaign manifest",
        description=(
            "Print a small ready-to-run manifest (program-bandwidth and "
            "trace-replay jobs) to feed 'campaign run' or POST /campaigns."
        ),
    )
    return parser


def _campaign_main(argv: List[str]) -> int:
    import signal
    import threading

    from repro.common.errors import ConfigError, ReproError
    from repro.evaluation.campaign import (
        CampaignManifest,
        example_manifest,
        results_to_json,
    )
    from repro.evaluation.service import (
        CampaignService,
        CampaignStore,
        serve,
    )

    args = _campaign_parser().parse_args(argv)
    if args.command == "example":
        print(example_manifest().to_json(), end="")
        return 0
    cache_dir = None if args.no_cache else args.cache_dir
    log = lambda message: print(message, file=sys.stderr)  # noqa: E731
    if args.command == "run":
        try:
            if args.manifest == "-":
                text = sys.stdin.read()
            else:
                with open(args.manifest, "r", encoding="utf-8") as handle:
                    text = handle.read()
            manifest = CampaignManifest.from_json(text)
        except (OSError, ConfigError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        store = CampaignStore(args.state_dir)
        key = store.enqueue(manifest)
        drain = threading.Event()
        signal.signal(signal.SIGTERM, lambda s, f: drain.set())
        service = CampaignService(
            store,
            workers=args.workers,
            cache_dir=cache_dir,
            log=log,
            **(
                {"max_requeues": args.max_requeues}
                if args.max_requeues is not None
                else {}
            ),
        )
        service.drain = drain
        try:
            body = store.results_bytes(key)
            if body is None:
                service.run_one(key)
                body = store.results_bytes(key)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        status = store.status(key) or {}
        if body is None:
            print(
                f"campaign {key}: {status.get('state', 'unknown')}",
                file=sys.stderr,
            )
            return 1
        sys.stdout.write(body.decode("utf-8"))
        return 0
    store = CampaignStore(args.state_dir)
    if args.command == "serve":
        service = CampaignService(
            store, workers=args.workers, cache_dir=cache_dir, log=log
        )
        return serve(service, host=args.host, port=args.port)
    # status
    if args.key is None:
        documents = [store.describe(key) for key in store.keys()]
        print(
            json.dumps(
                {"campaigns": [d for d in documents if d is not None]},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    try:
        description = store.describe(args.key)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if description is None:
        print(f"error: no campaign {args.key}", file=sys.stderr)
        return 2
    print(json.dumps(description, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    if argv and argv[0] == "mc":
        return _mc_main(argv[1:])
    if argv and argv[0] == "replay":
        return _replay_main(argv[1:])
    if argv and argv[0] == "campaign":
        return _campaign_main(argv[1:])
    args = _parser().parse_args(argv)
    ids = experiment_ids()
    if args.list:
        for experiment_id in ids:
            print(experiment_id)
        return 0
    chosen = ids if args.all else args.experiments
    if not chosen:
        _parser().print_usage()
        print("error: give experiment ids, --all, or --list", file=sys.stderr)
        return 2
    unknown = [e for e in chosen if e not in ids]
    if unknown:
        print(
            f"error: unknown experiment(s) {', '.join(unknown)}; "
            "see --list",
            file=sys.stderr,
        )
        return 2
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    trace_stream = None
    if args.trace_events:
        trace_stream = open(args.trace_events, "w", encoding="utf-8")
    try:
        runner = _make_runner(args, trace_stream=trace_stream)
        started = time.monotonic()
        if args.check:
            status = _check_against(chosen, args.check, runner)
            _report(runner, time.monotonic() - started, args.quiet)
            return status
        for experiment_id in chosen:
            if not args.quiet:
                print(f"[{experiment_id}]", file=sys.stderr)
            table = _resolve_table(experiment_id, runner)
            if args.markdown:
                print(table.to_markdown(precision=args.precision))
            else:
                print(table.render(precision=args.precision))
            if args.out:
                path = os.path.join(args.out, f"{experiment_id}.csv")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(table.to_csv())
                print(f"[wrote {path}]\n")
        if args.metrics_out:
            document = {
                name: snapshot.to_dict()
                for name, snapshot in sorted(runner.metrics.items())
            }
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            if not args.quiet:
                print(f"[wrote {args.metrics_out}]", file=sys.stderr)
        _report(runner, time.monotonic() - started, args.quiet)
        return 0
    finally:
        if trace_stream is not None:
            trace_stream.close()


def _diff_lines(actual: str, expected: str) -> List[str]:
    """Human-readable description of the first divergence between two CSVs,
    including length differences ``zip`` would silently swallow."""
    got_lines = actual.splitlines()
    want_lines = expected.splitlines()
    detail: List[str] = []
    if len(got_lines) != len(want_lines):
        detail.append(
            f"  expected {len(want_lines)} lines, got {len(got_lines)}"
        )
    for row, (got, want) in enumerate(zip(got_lines, want_lines), start=1):
        if got != want:
            detail.append(f"  first differing line ({row}):")
            detail.append(f"    expected: {want}")
            detail.append(f"    actual:   {got}")
            return detail
    # All shared lines agree, so one side has trailing extra lines.
    if len(got_lines) > len(want_lines):
        extra = got_lines[len(want_lines)]
        detail.append(f"  first extra line ({len(want_lines) + 1}): {extra}")
    elif len(want_lines) > len(got_lines):
        missing = want_lines[len(got_lines)]
        detail.append(
            f"  first missing line ({len(got_lines) + 1}): {missing}"
        )
    return detail


def _check_against(
    chosen: List[str],
    golden_dir: str,
    runner: Optional[SweepRunner] = None,
) -> int:
    """Golden-file regression: simulations are deterministic, so every
    regenerated table must match its stored CSV byte for byte."""
    failures = 0
    for experiment_id in chosen:
        path = os.path.join(golden_dir, f"{experiment_id}.csv")
        if not os.path.exists(path):
            print(f"{experiment_id}: MISSING golden file {path}")
            failures += 1
            continue
        with open(path, "r", encoding="utf-8") as handle:
            expected = handle.read()
        if runner is None:
            actual = run_experiment(experiment_id).to_csv()
        else:
            actual = _resolve_table(experiment_id, runner).to_csv()
        if actual == expected:
            print(f"{experiment_id}: OK")
        else:
            print(f"{experiment_id}: MISMATCH against {path}")
            for line in _diff_lines(actual, expected):
                print(line)
            failures += 1
    if failures:
        print(f"{failures} experiment(s) diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
