"""``csb-figures`` — regenerate the paper's evaluation from the command line.

Examples::

    csb-figures --list
    csb-figures fig3c fig5a
    csb-figures --all --out results/
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.evaluation.experiments import experiment_ids, run_experiment


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csb-figures",
        description=(
            "Regenerate the tables behind every figure panel of "
            "'Improving I/O Performance with a Conditional Store Buffer' "
            "(MICRO 1998)."
        ),
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. fig3c)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--out", metavar="DIR", help="also write each table as CSV into DIR"
    )
    parser.add_argument(
        "--precision", type=int, default=2, help="decimal places (default 2)"
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="print tables as GitHub-flavoured markdown",
    )
    parser.add_argument(
        "--check",
        metavar="DIR",
        help=(
            "regression mode: regenerate each experiment and diff its CSV "
            "against DIR/<id>.csv; exit 1 on any mismatch"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    chosen = experiment_ids() if args.all else args.experiments
    if not chosen:
        _parser().print_usage()
        print("error: give experiment ids, --all, or --list", file=sys.stderr)
        return 2
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    unknown = [e for e in chosen if e not in experiment_ids()]
    if unknown:
        print(
            f"error: unknown experiment(s) {', '.join(unknown)}; "
            "see --list",
            file=sys.stderr,
        )
        return 2
    if args.check:
        return _check_against(chosen, args.check)
    for experiment_id in chosen:
        table = run_experiment(experiment_id)
        if args.markdown:
            print(table.to_markdown(precision=args.precision))
        else:
            print(table.render(precision=args.precision))
        if args.out:
            path = os.path.join(args.out, f"{experiment_id}.csv")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(table.to_csv())
            print(f"[wrote {path}]\n")
    return 0


def _check_against(chosen: List[str], golden_dir: str) -> int:
    """Golden-file regression: simulations are deterministic, so every
    regenerated table must match its stored CSV byte for byte."""
    failures = 0
    for experiment_id in chosen:
        path = os.path.join(golden_dir, f"{experiment_id}.csv")
        if not os.path.exists(path):
            print(f"{experiment_id}: MISSING golden file {path}")
            failures += 1
            continue
        with open(path, "r", encoding="utf-8") as handle:
            expected = handle.read()
        actual = run_experiment(experiment_id).to_csv()
        if actual == expected:
            print(f"{experiment_id}: OK")
        else:
            print(f"{experiment_id}: MISMATCH against {path}")
            for got, want in zip(actual.splitlines(), expected.splitlines()):
                if got != want:
                    print(f"  expected: {want}")
                    print(f"  actual:   {got}")
                    break
            failures += 1
    if failures:
        print(f"{failures} experiment(s) diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
