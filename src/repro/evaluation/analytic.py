"""Closed-form bandwidth model used to cross-check the simulator.

For a bus whose transactions occupy ``c`` cycles, separated by a mandatory
turnaround ``t`` and a minimum address-to-address delay ``d``, consecutive
transaction starts are ``p = max(c + t, d)`` cycles apart, and the paper's
bandwidth window for ``n`` back-to-back transactions spans
``(n - 1) * p + c`` cycles (the turnaround after the last transaction is
not counted).  These formulas pin the simulator at both ends: the
non-combining stream (every doubleword its own transaction) and the CSB
stream (every line a full burst) must match them *exactly*, because in both
cases the processor at ratio >= 2 keeps the bus saturated.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.common.config import BusConfig, MemoryConfig
from repro.common.errors import ConfigError


def transaction_cycles(bus: BusConfig, size: int) -> int:
    """Bus cycles one write transaction of ``size`` bytes occupies."""
    beats = bus.data_beats(size)
    if bus.kind == "multiplexed":
        return 1 + beats
    return beats


def start_period(bus: BusConfig, size: int) -> int:
    """Cycles between consecutive transaction starts in a saturated stream."""
    return max(transaction_cycles(bus, size) + bus.turnaround, bus.min_addr_delay)


def window_cycles(bus: BusConfig, size: int, count: int) -> int:
    """Paper-style bandwidth window for ``count`` back-to-back transactions."""
    if count < 1:
        raise ConfigError("need at least one transaction")
    return (count - 1) * start_period(bus, size) + transaction_cycles(bus, size)


def noncombining_bandwidth(bus: BusConfig, total_bytes: int, dword: int = 8) -> float:
    """Exact bandwidth of the non-combining doubleword stream."""
    if total_bytes % dword:
        raise ConfigError("total_bytes must be a doubleword multiple")
    count = total_bytes // dword
    return total_bytes / window_cycles(bus, dword, count)


def csb_bandwidth(bus: BusConfig, line_size: int, total_bytes: int) -> float:
    """Exact bandwidth of the CSB stream for a given transfer size.

    Every flush issues a full ``line_size`` burst; only the stored payload
    counts as useful bytes, which is the small-transfer penalty.
    """
    if total_bytes < 1:
        raise ConfigError("empty transfer")
    bursts = (total_bytes + line_size - 1) // line_size
    return total_bytes / window_cycles(bus, line_size, bursts)


def csb_steady_bandwidth(bus: BusConfig, line_size: int) -> float:
    """Asymptotic CSB bandwidth: one full line per burst period."""
    return line_size / start_period(bus, line_size)


def combining_steady_bandwidth(bus: BusConfig, block_size: int) -> float:
    """Upper bound for hardware combining: every transaction a full block.

    The simulator approaches (never exceeds) this from below, because the
    first transactions of a transfer leave the buffer before combining can
    take effect (paper §4.3.1).
    """
    return block_size / start_period(bus, block_size)


# -- cached-average-write-latency (CAWL) model ---------------------------------
#
# The D-cache counterpart of the bandwidth formulas above: the expected
# cost of a serialized cached-store stream as a function of the cache
# geometry, the paper's "caching the I/O space" contrast.  A write-back
# write-allocate cache pays the miss latency once per line and the hit
# latency for every store after it; a write-through cache with no write
# buffer (MemoryConfig's write-through model) pays the full memory write
# on *every* store, hit or miss — which is exactly why the paper's
# combining schemes exist.


def cached_write_latency(mem: MemoryConfig, hit_ratio: float) -> float:
    """Expected CPU cycles per serialized cached store at ``hit_ratio``."""
    if not 0.0 <= hit_ratio <= 1.0:
        raise ConfigError("hit_ratio must be within [0, 1]")
    if mem.write_policy == "writethrough":
        return float(mem.miss_latency)
    return hit_ratio * mem.hit_latency + (1.0 - hit_ratio) * mem.miss_latency


def write_run_cycles(mem: MemoryConfig, lines: int, stores_per_line: int) -> int:
    """Predicted cycles for a serialized store sweep over ``lines`` cold
    lines, ``stores_per_line`` stores each (write-allocate: the first
    store per line misses, the rest hit)."""
    if lines < 1 or stores_per_line < 1:
        raise ConfigError("need at least one line and one store per line")
    if mem.write_policy == "writethrough":
        return lines * stores_per_line * mem.miss_latency
    return lines * (mem.miss_latency + (stores_per_line - 1) * mem.hit_latency)


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Closed-form least-squares line fit; returns ``(intercept, slope)``.

    Hand-rolled (two passes, no numpy) so the evaluation harness can
    recover effective latencies from simulated sweeps: fitting measured
    run cycles against the number of cold lines touched yields a slope of
    ``miss_latency + (stores_per_line - 1) * hit_latency`` per
    :func:`write_run_cycles`, which the validation test compares against
    the configured :class:`~repro.common.config.MemoryConfig`.
    """
    n = len(xs)
    if n != len(ys) or n < 2:
        raise ConfigError("need at least two (x, y) samples of equal length")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ConfigError("x samples are all identical; slope is undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return mean_y - slope * mean_x, slope
