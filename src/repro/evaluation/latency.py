"""Atomic I/O access latency (Figure 5).

Compares the conventional lock / uncached-store / unlock sequence against
the CSB's store-and-conditionally-flush sequence, in CPU cycles from the
start of the access to its architectural completion (lock released, or
flush confirmed).  Panel (a) warms the lock variable into the L1; panel (b)
leaves it cold so the acquire takes the full 100-cycle miss.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.common.config import (
    BusConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
    UncachedBufferConfig,
)
from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.evaluation.runner import (
    SimJob,
    SweepRunner,
    default_runner,
    execute_job,
)
from repro.evaluation.schemes import SCHEME_CSB, all_schemes, scheme_block
from repro.workloads.spec import ProgramWorkload
from repro.workloads.lockbench import (
    DEFAULT_LOCK_ADDR,
    MARK_DONE,
    MARK_START,
    csb_access_kernel,
    locked_access_kernel,
)

#: Doubleword counts the paper sweeps (2..8 => 16..64 bytes).
DOUBLEWORD_COUNTS = tuple(range(2, 9))


def _fig5_config(scheme: str, line_size: int = 64, cpu_ratio: int = 6) -> SystemConfig:
    block = 8 if scheme == SCHEME_CSB else scheme_block(scheme)
    return SystemConfig(
        memory=MemoryHierarchyConfig.with_line_size(line_size),
        bus=BusConfig(cpu_ratio=cpu_ratio, max_burst_bytes=line_size),
        uncached=UncachedBufferConfig(combine_block=min(block, line_size)),
        csb=CSBConfig(line_size=line_size),
    )


def latency_job(
    scheme: str,
    n_doublewords: int,
    lock_hits_l1: bool,
    line_size: int = 64,
    cpu_ratio: int = 6,
) -> SimJob:
    """Describe one atomic-access latency point as a SimJob."""
    if n_doublewords < 1 or n_doublewords * 8 > line_size:
        raise ConfigError(
            f"{n_doublewords} doublewords do not fit a {line_size}-byte line"
        )
    name = f"fig5-{scheme}-{n_doublewords}"
    if scheme == SCHEME_CSB:
        source = csb_access_kernel(n_doublewords)
    else:
        source = locked_access_kernel(n_doublewords)
    workload = ProgramWorkload(
        name=name,
        sources=((name, source),),
        warm=(DEFAULT_LOCK_ADDR,) if lock_hits_l1 else (),
        span=(MARK_START, MARK_DONE),
    )
    return SimJob.from_workload(
        workload,
        config=_fig5_config(scheme, line_size, cpu_ratio),
        measurement="span",
    )


def latency_point(
    scheme: str,
    n_doublewords: int,
    lock_hits_l1: bool,
    line_size: int = 64,
    cpu_ratio: int = 6,
) -> int:
    """CPU cycles for one atomic access of ``n_doublewords`` stores."""
    return execute_job(
        latency_job(scheme, n_doublewords, lock_hits_l1, line_size, cpu_ratio)
    )


def fig5_table(
    lock_hits_l1: bool,
    counts: Iterable[int] = DOUBLEWORD_COUNTS,
    schemes: Optional[List[str]] = None,
    line_size: int = 64,
    runner: Optional[SweepRunner] = None,
) -> Table:
    """One Figure 5 panel: rows = schemes, columns = transfer sizes."""
    counts = list(counts)
    if schemes is None:
        schemes = all_schemes(line_size)
    if runner is None:
        runner = default_runner()
    jobs = [
        latency_job(scheme, n, lock_hits_l1, line_size)
        for scheme in schemes
        for n in counts
    ]
    values = iter(runner.run(jobs))
    panel = "a" if lock_hits_l1 else "b"
    state = "hits L1" if lock_hits_l1 else "misses (100-cycle miss)"
    table = Table(
        ["scheme"] + [f"{n * 8}B" for n in counts],
        title=f"Figure 5({panel}) — lock {state} [CPU cycles]",
    )
    for scheme in schemes:
        table.add_row(scheme, *[next(values) for _ in counts])
    return table
