"""Message-send crossover on a machine with the non-blocking D-cache.

The plain crossover study (:mod:`repro.evaluation.crossover`) charges the
PIO path's lock acquire through the blocking hierarchy, so "the lock hits"
is an input to the experiment.  With :class:`~repro.common.config.MemoryConfig`
enabled the lock variable lives in the data cache and the hit/miss split is
*emergent*: the same locked-PIO kernel is run twice, once with the lock line
warmed into the cache (``pio_lock_hit``) and once stone cold
(``pio_lock_miss``), and the latency difference is whatever the MSHR miss
path actually costs — nothing in this module adds cycles by hand.

The CSB and DMA rows run on the identical cached machine (their kernels
touch only uncached space, so the cache is present but silent), which makes
the four rows directly comparable: the CSB's lock-freedom shows up as
immunity to the hit/miss split that moves the PIO rows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional

from repro.common.config import MemoryConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.evaluation.crossover import MESSAGE_SIZES, send_latency

#: Row order of the cached-crossover table.
CACHED_METHODS = ("pio_lock_hit", "pio_lock_miss", "csb", "dma")


def _cached_config(mem: Optional[MemoryConfig]) -> SystemConfig:
    if mem is None:
        mem = MemoryConfig(enabled=True)
    elif not mem.enabled:
        raise ConfigError("cached-crossover needs mem.enabled=True")
    return replace(SystemConfig(), mem=mem)


def cached_send_latency(
    method: str, payload_bytes: int, mem: Optional[MemoryConfig] = None
) -> int:
    """CPU cycles to NIC hand-off on the cached machine.

    ``pio_lock_hit`` / ``pio_lock_miss`` are the same locked-PIO kernel;
    only the initial residency of the lock line differs.
    """
    if method not in CACHED_METHODS:
        raise ConfigError(
            f"unknown cached send method {method!r}; have {CACHED_METHODS}"
        )
    config = _cached_config(mem)
    base = "pio_locked" if method.startswith("pio_lock") else method
    return send_latency(
        base,
        payload_bytes,
        config=config,
        warm_lock=(method == "pio_lock_hit"),
    )


def cached_crossover_table(
    sizes: Iterable[int] = MESSAGE_SIZES,
    mem: Optional[MemoryConfig] = None,
    runner=None,
) -> Table:
    """Rows = send methods, columns = message sizes, cells = CPU cycles.

    ``runner`` is accepted for registry compatibility; when it carries a
    ``mem`` overrides section (the CLI's ``--mem``), those fields
    parameterize the cache.  The cache itself is this experiment's
    subject, so ``enabled`` is pinned to True here — a blanket
    ``--mem enabled=false`` across ``--all`` leaves this table (and its
    golden check) untouched instead of failing it.
    """
    if mem is None and runner is not None and getattr(runner, "overrides", None):
        section = runner.overrides.get("mem")
        if section:
            fields = dict(section)
            fields["enabled"] = True
            mem = MemoryConfig(**fields)
    sizes = list(sizes)
    table = Table(
        ["method"] + [str(s) for s in sizes],
        title=(
            "Cached-I/O message latency [CPU cycles to NIC hand-off, "
            "non-blocking D-cache enabled]"
        ),
    )
    for method in CACHED_METHODS:
        table.add_row(
            method, *[cached_send_latency(method, size, mem) for size in sizes]
        )
    return table


def lock_miss_penalty(
    payload_bytes: int = 64, mem: Optional[MemoryConfig] = None
) -> int:
    """The emergent lock-hit/lock-miss latency split (CPU cycles)."""
    return cached_send_latency(
        "pio_lock_miss", payload_bytes, mem
    ) - cached_send_latency("pio_lock_hit", payload_bytes, mem)
