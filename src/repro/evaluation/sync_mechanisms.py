"""Synchronization mechanism comparison (paper §4.3.2 discussion).

"Other synchronization mechanisms, like the load-linked/store-conditional
instruction pair, also affect the locking overhead.  In many
implementations, the store-conditional instruction results in a bus
transaction even for a cache hit, which would further increase the
locking overhead."

This study measures the same 2–8 doubleword atomic device access as
Figure 5, with the lock built four ways: the SPARC ``swap`` spin lock, an
LL/SC lock whose store-conditional completes locally on a hit, an LL/SC
lock whose store-conditional broadcasts on the bus, and the lock-free CSB.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.config import (
    BusConfig,
    CoreConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
)
from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.isa.assembler import assemble
from repro.sim.system import System
from repro.workloads.lockbench import (
    DEFAULT_LOCK_ADDR,
    MARK_DONE,
    MARK_START,
    csb_access_kernel,
    locked_access_kernel,
)
from repro.memory.layout import IO_UNCACHED_BASE

MECHANISMS = ("swap_lock", "llsc_local", "llsc_bus", "csb")


def llsc_access_kernel(
    n_doublewords: int,
    lock_addr: int = DEFAULT_LOCK_ADDR,
    data_base: int = IO_UNCACHED_BASE,
) -> str:
    """The Figure 5 locked access with an LL/SC lock instead of swap."""
    from repro.common.config import DOUBLEWORD

    lines: List[str] = [
        f"mark {MARK_START}",
        f"set {lock_addr}, %o0",
        f"set {data_base}, %o1",
        ".ACQ:",
        "ll [%o0], %l6",
        "brnz %l6, .ACQ",          # lock held: spin
        "set 1, %l5",
        "sc %l5, [%o0], %l5",      # attempt to claim
        "brz %l5, .ACQ",           # lost the link: retry
        "membar",
    ]
    for i in range(n_doublewords):
        lines.append(f"stx %l{i % 4}, [%o1+{i * DOUBLEWORD}]")
    lines += [
        "membar",
        "stx %g0, [%o0]",          # release
        f"mark {MARK_DONE}",
        "halt",
    ]
    return "\n".join(lines)


def sync_access_cycles(
    mechanism: str, n_doublewords: int, lock_hits_l1: bool = True
) -> int:
    if mechanism not in MECHANISMS:
        raise ConfigError(f"unknown mechanism {mechanism!r}")
    config = SystemConfig(
        core=CoreConfig(sc_bus_transaction=(mechanism == "llsc_bus")),
        memory=MemoryHierarchyConfig.with_line_size(64),
        bus=BusConfig(cpu_ratio=6, max_burst_bytes=64),
        csb=CSBConfig(line_size=64),
    )
    system = System(config)
    if mechanism == "swap_lock":
        source = locked_access_kernel(n_doublewords)
    elif mechanism in ("llsc_local", "llsc_bus"):
        source = llsc_access_kernel(n_doublewords)
    else:
        source = csb_access_kernel(n_doublewords)
    system.add_process(assemble(source, name=mechanism))
    if lock_hits_l1:
        system.hierarchy.warm(DEFAULT_LOCK_ADDR)
    system.run()
    return system.span(MARK_START, MARK_DONE)


def sync_mechanism_table(
    counts: Iterable[int] = (2, 4, 8), lock_hits_l1: bool = True
) -> Table:
    counts = list(counts)
    state = "hits L1" if lock_hits_l1 else "misses"
    table = Table(
        ["mechanism"] + [f"{n * 8}B" for n in counts],
        title=f"Atomic device access by synchronization mechanism, "
        f"lock {state} [CPU cycles]",
    )
    for mechanism in MECHANISMS:
        table.add_row(
            mechanism,
            *[sync_access_cycles(mechanism, n, lock_hits_l1) for n in counts],
        )
    return table
