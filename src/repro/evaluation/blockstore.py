"""Atomic line-write mechanisms head to head (paper §6 extension).

Compares every mechanism that can move one 64-byte line to a device
atomically: the conventional lock + uncached stores + unlock, the CSB
sequence, and the VIS block store (with its payload preloaded in FP
registers, and with the realistic integer-marshalling prologue).
"""

from __future__ import annotations

from typing import Dict

from repro.common.tables import Table
from repro.isa.assembler import assemble
from repro.sim.system import System
from repro.workloads.blockstore import (
    SCRATCH_ADDR,
    blockstore_kernel,
    blockstore_marshalled_kernel,
)
from repro.workloads.lockbench import (
    DEFAULT_LOCK_ADDR,
    MARK_DONE,
    MARK_START,
    csb_access_kernel,
    locked_access_kernel,
)

MECHANISMS = (
    "lock_stores_unlock",
    "csb",
    "blockstore_preloaded",
    "blockstore_marshalled",
)


def atomic_line_write(mechanism: str) -> "tuple[int, int]":
    """(CPU cycles, dynamic instructions) to atomically deliver one
    64-byte line (8 doublewords)."""
    system = System()
    if mechanism == "lock_stores_unlock":
        source = locked_access_kernel(8)
    elif mechanism == "csb":
        source = csb_access_kernel(8)
    elif mechanism == "blockstore_preloaded":
        source = blockstore_kernel()
    elif mechanism == "blockstore_marshalled":
        source = blockstore_marshalled_kernel()
    else:
        raise ValueError(f"unknown mechanism {mechanism!r}")
    process = system.add_process(assemble(source, name=mechanism))
    for i in range(8):
        process.set_register(f"%f{i * 2}", 0x1111_0000 + i)
    system.hierarchy.warm(DEFAULT_LOCK_ADDR)
    system.hierarchy.warm(SCRATCH_ADDR)
    system.run()
    return (
        system.span(MARK_START, MARK_DONE),
        process.retired_instructions,
    )


def atomic_line_write_cycles(mechanism: str) -> int:
    """CPU cycles only (convenience wrapper)."""
    return atomic_line_write(mechanism)[0]


def blockstore_table() -> Table:
    """Latency and dynamic instruction cost per mechanism.

    The block store's raw latency win is real — atomicity is free once the
    payload sits in FP registers.  The costs the paper's §6 holds against
    it show up in the instruction column (integer payloads must be
    marshalled through memory) and in what no column can show: eight FP
    registers pinned per pending line, saved and restored on every context
    switch.
    """
    table = Table(
        ["mechanism", "cycles", "instructions"],
        title="Atomic 64-byte device write: mechanism comparison",
    )
    results: Dict[str, "tuple[int, int]"] = {
        mechanism: atomic_line_write(mechanism) for mechanism in MECHANISMS
    }
    for mechanism in MECHANISMS:
        cycles, instructions = results[mechanism]
        table.add_row(mechanism, cycles, instructions)
    return table
