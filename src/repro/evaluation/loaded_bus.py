"""Store bandwidth on a non-idle bus (extension of §4.3.1).

The paper measures uncached store bandwidth on a completely idle bus and
treats the mandatory-turnaround panel as "an approximation of a heavily
loaded bus".  With refill occupancy enabled
(``MemoryHierarchyConfig.refills_use_bus``), this study measures the real
thing: the store stream shares the bus with the cache-line refills of a
missing load stream interleaved into the same program.  Refills get bus
priority, so every miss steals a full burst slot from the uncached stream.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.config import (
    BusConfig,
    CSBConfig,
    DOUBLEWORD,
    MemoryHierarchyConfig,
    SystemConfig,
    UncachedBufferConfig,
)
from repro.common.tables import Table
from repro.isa.assembler import assemble
from repro.memory.layout import DRAM_BASE, IO_COMBINING_BASE, IO_UNCACHED_BASE
from repro.sim.system import System
from repro.evaluation.schemes import SCHEME_CSB, scheme_block

#: Cached array the interfering loads stream over (never revisited, so
#: every load misses all the way to memory).
MISS_ARRAY_BASE = DRAM_BASE + 0x10_0000

LOADED_SCHEMES = ("none", "combine64", "csb")


def stores_with_miss_stream_kernel(
    total_bytes: int,
    line_size: int,
    csb: bool,
    misses_per_line: int = 1,
) -> str:
    """The §4.2 store stream with ``misses_per_line`` cache-missing loads
    interleaved per line of stores."""
    base = IO_COMBINING_BASE if csb else IO_UNCACHED_BASE
    lines: List[str] = [
        f"set {base}, %o1",
        f"set {MISS_ARRAY_BASE}, %o2",
        "set 0x77, %l0",
    ]
    dwords = total_bytes // DOUBLEWORD
    per_line = line_size // DOUBLEWORD
    miss_index = 0
    group = 0
    emitted = 0
    while emitted < dwords:
        in_group = min(per_line, dwords - emitted)
        if csb:
            lines.append(f".RETRY{group}:")
            lines.append(f"set {in_group}, %l4")
        for i in range(in_group):
            lines.append(f"stx %l0, [%o1+{(emitted + i) * DOUBLEWORD}]")
        if csb:
            lines.append(f"swap [%o1+{emitted * DOUBLEWORD}], %l4")
            lines.append(f"cmp %l4, {in_group}")
            lines.append(f"bnz .RETRY{group}")
        for _ in range(misses_per_line):
            lines.append(f"ldx [%o2+{miss_index * line_size}], %l1")
            miss_index += 1
        emitted += in_group
        group += 1
    lines += ["membar", "halt"]
    return "\n".join(lines)


def _loaded_config(scheme: str, refills_use_bus: bool) -> SystemConfig:
    block = 8 if scheme == SCHEME_CSB else scheme_block(scheme)
    return SystemConfig(
        memory=MemoryHierarchyConfig.with_line_size(
            64, refills_use_bus=refills_use_bus
        ),
        bus=BusConfig(cpu_ratio=6, max_burst_bytes=64),
        uncached=UncachedBufferConfig(combine_block=min(block, 64)),
        csb=CSBConfig(line_size=64),
    )


def loaded_bandwidth_point(
    scheme: str, total_bytes: int, refills_use_bus: bool
) -> float:
    system = System(_loaded_config(scheme, refills_use_bus))
    source = stores_with_miss_stream_kernel(
        total_bytes, 64, csb=(scheme == SCHEME_CSB)
    )
    system.add_process(assemble(source))
    system.run()
    return system.store_bandwidth


def miss_interleaved_table(sizes: Iterable[int] = (256, 512, 1024)) -> Table:
    """Idle vs loaded bus with the misses *in the program*.

    Two effects compose here: refill bus occupancy (when enabled) and the
    retire-stall of each missing load, which delays the uncached stream at
    the source.  The latter actually *helps* hardware combining — entries
    wait longer in the buffer, so more stores coalesce (the paper's
    "combining is more successful if transactions remain in the uncached
    buffer for a long time") — while the CSB, already bursting full lines,
    only loses the idle gaps.
    """
    sizes = list(sizes)
    table = Table(
        ["scheme", "bus"] + [str(s) for s in sizes],
        title="Store bandwidth with interleaved cache misses "
        "[bytes per bus cycle]",
    )
    for scheme in LOADED_SCHEMES:
        for loaded in (False, True):
            label = "loaded" if loaded else "idle"
            table.add_row(
                scheme,
                label,
                *[loaded_bandwidth_point(scheme, s, loaded) for s in sizes],
            )
    return table


def injected_bandwidth_point(
    scheme: str, total_bytes: int, refill_period: int
) -> float:
    """Store bandwidth with one line refill injected every
    ``refill_period`` bus cycles (0 = idle bus) — pure bus contention,
    independent of the pipeline."""
    from repro.workloads.storebw import store_kernel_csb, store_kernel_uncached

    system = System(_loaded_config(scheme, refills_use_bus=True))
    if scheme == SCHEME_CSB:
        source = store_kernel_csb(total_bytes, 64)
    else:
        source = store_kernel_uncached(total_bytes)
    system.add_process(assemble(source))
    ratio = system.config.bus.cpu_ratio
    next_injection = 0
    line = 0
    while not system.finished:
        if refill_period and system.cycle % ratio == 0:
            bus_cycle = system.cycle // ratio
            if bus_cycle >= next_injection:
                system.refill_engine.request(MISS_ARRAY_BASE + line * 64)
                line += 1
                next_injection = bus_cycle + refill_period
        system.step()
        if system.cycle > 5_000_000:
            raise RuntimeError("loaded-bus run did not converge")
    return system.store_bandwidth


def loaded_bus_table(
    refill_periods: Iterable[int] = (0, 40, 20, 12),
    total_bytes: int = 1024,
) -> Table:
    """Pure bus-contention study: rows = schemes, columns = interference
    rates (one 9-cycle line refill every N bus cycles; 0 = idle)."""
    refill_periods = list(refill_periods)

    def label(period: int) -> str:
        return "idle" if period == 0 else f"1/{period}"

    table = Table(
        ["scheme"] + [label(p) for p in refill_periods],
        title=f"Store bandwidth vs injected refill traffic "
        f"({total_bytes} B transfer) [bytes per bus cycle]",
    )
    for scheme in LOADED_SCHEMES:
        table.add_row(
            scheme,
            *[
                injected_bandwidth_point(scheme, total_bytes, period)
                for period in refill_periods
            ],
        )
    return table
