"""Parallel sweep engine with a content-addressed on-disk result cache.

Every figure in the reproduction is a sweep of *independent* full-system
simulations; nothing about one (panel, scheme, size) point depends on any
other.  This module decomposes a sweep into picklable :class:`SimJob`
descriptors — a serialized :class:`~repro.common.config.SystemConfig`, the
kernel source, and the measurement to take — and executes them through a
:class:`SweepRunner` that can fan jobs out over a process pool and/or
resolve them from a content-addressed cache.

Determinism guarantee
---------------------

The simulator is fully deterministic: a job's result is a pure function of
its configuration, kernel, and measurement.  ``SweepRunner.run`` therefore
returns results in *input order* regardless of completion order, so a
parallel sweep is byte-identical to a serial one, and a cached result is
byte-identical to a fresh simulation (values round-trip exactly through
JSON).  The equivalence is enforced by tests/integration/test_runner.py.

Cache keys
----------

A cache entry is keyed by the SHA-256 of the canonical JSON of
(:data:`SIM_VERSION`, config, kernel, measurement, measurement args, warmed
addresses).  Changing any of those produces a different key; bump
:data:`SIM_VERSION` whenever a simulator change may alter timing so stale
entries can never be served.  Corrupt or truncated entries are treated as
misses and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.config import SamplingConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.common.serialize import apply_overrides, config_to_dict
from repro.common.tables import Table
from repro.isa.assembler import assemble
from repro.sim.system import System

#: Simulator version tag baked into every cache key.  Bump whenever a
#: change to the simulator could alter any measured number.
SIM_VERSION = "csb-sim-2"

#: Measurement kinds a job may request.
MEASUREMENTS = ("store_bandwidth", "span")

#: A job result: bytes-per-cycle (float) or a cycle span (int).
Result = Union[int, float]

#: Progress callback: (completed jobs so far, total jobs in this sweep).
ProgressFn = Callable[[int, int], None]


def _stderr_note(message: str) -> None:
    """Default SweepRunner log sink: one line to stderr (never stdout —
    table output must stay byte-identical)."""
    print(message, file=sys.stderr)


@dataclass(frozen=True)
class SimJob:
    """One simulation point, fully described and picklable.

    ``measurement`` selects what to read off the finished system:

    * ``"store_bandwidth"`` — bytes per bus cycle over the uncached-store
      window (the Figure 3/4 metric); ``args`` unused.
    * ``"span"`` — CPU cycles between two ``mark`` labels (the Figure 5
      metric); ``args`` is ``(start_label, end_label)``.

    ``warm`` lists addresses pre-loaded into the cache hierarchy before
    the run (e.g. the lock variable for the warm-lock panels).  ``name``
    is a display label only — it does not affect the result or the cache
    key.
    """

    config: SystemConfig
    kernel: str
    measurement: str = "store_bandwidth"
    args: Tuple[str, ...] = ()
    warm: Tuple[int, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if self.measurement not in MEASUREMENTS:
            raise ConfigError(
                f"unknown measurement {self.measurement!r}; "
                f"have {MEASUREMENTS}"
            )
        if self.measurement == "span" and len(self.args) != 2:
            raise ConfigError("span measurement needs (start, end) labels")


def execute_job(job: SimJob, observers: Sequence = ()) -> Result:
    """Build the system, run the kernel to completion, take the measurement.

    Pure: equal jobs always produce equal results.  This is the function a
    worker process runs, and also the serial fallback.  ``observers`` are
    event sinks attached before the run (tracing is passive, so an
    observed run returns the identical measurement).
    """
    return _measure(run_system(job, observers), job)


def run_system(job: SimJob, observers: Sequence = ()) -> System:
    """Build and run ``job``'s system, returning it for inspection.

    When the job's config enables sampling, the run goes through the
    tiered execution engine (:func:`repro.sim.sampling.run_sampled`);
    otherwise this is exactly ``System.run`` — sampling disabled means the
    detailed code path is untouched, byte for byte.
    """
    system = System(job.config)
    for sink in observers:
        system.attach_observer(sink)
    system.add_process(assemble(job.kernel, name=job.name or "job"))
    for address in job.warm:
        system.warm(address)
    if job.config.sampling.enabled:
        from repro.sim.sampling import run_sampled

        run_sampled(system)
    else:
        system.run()
    return system


def _measure(system: System, job: SimJob) -> Result:
    if job.measurement == "store_bandwidth":
        return system.store_bandwidth
    start, end = job.args
    raw = system.span(start, end)
    report = system.sampling_report
    if report is not None:
        # Sampled run: mark cycles freeze during fast-forward, so the raw
        # span misses skipped work; reconstruct it at the sampled CPI.
        return report.estimate_span(raw, start, end)
    return raw


def _digest(document: dict) -> str:
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def job_key(job: SimJob) -> str:
    """Content hash of everything that determines the job's result."""
    return _digest(
        {
            "version": SIM_VERSION,
            "config": config_to_dict(job.config),
            "kernel": job.kernel,
            "measurement": job.measurement,
            "args": list(job.args),
            "warm": list(job.warm),
        }
    )


def experiment_key(experiment_id: str, variant: str = "") -> str:
    """Cache key for a whole experiment table.

    Some studies are not decomposable into independent :class:`SimJob`
    points (attached devices, two-node clusters, mid-run bus injection),
    so the CLI caches their finished tables instead.  The key carries no
    config content — only the :data:`SIM_VERSION` discipline protects
    these entries, which is the same contract the job-level cache states
    for simulator changes.  ``variant`` distinguishes alternative
    executions of the same experiment (the CLI passes the serialized
    sampling override here, so sampled tables never alias detailed ones).
    """
    document = {
        "version": SIM_VERSION,
        "kind": "experiment-table",
        "experiment": experiment_id,
    }
    if variant:
        document["variant"] = variant
    return _digest(document)


class ResultCache:
    """Content-addressed result store: one small JSON file per job key.

    Entries are written atomically (temp file + rename) so a killed run
    never leaves a readable-but-torn entry; anything unreadable or
    malformed is silently treated as a miss and recomputed.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.stores = 0
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[Result]:
        """The cached result for ``key``, or None (counted as a miss)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                document = json.load(handle)
            value = document["value"]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"bad cached value {value!r}")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Result, name: str = "") -> None:
        self._write(key, {"version": SIM_VERSION, "name": name, "value": value})

    def get_table(self, key: str) -> Optional[Table]:
        """The cached table for ``key``, or None (counted as a miss)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                document = json.load(handle)
            table = Table.from_dict(document["table"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return table

    def put_table(self, key: str, table: Table, name: str = "") -> None:
        self._write(
            key, {"version": SIM_VERSION, "name": name, "table": table.to_dict()}
        )

    def _write(self, key: str, document: dict) -> None:
        path = self._path(key)
        temporary = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(temporary, path)
            self.stores += 1
        except OSError:
            # A read-only or full cache directory must never fail a sweep.
            try:
                os.remove(temporary)
            except OSError:
                pass


class SweepRunner:
    """Executes batches of :class:`SimJob` with caching and parallelism.

    ``jobs`` is the maximum number of worker processes; 1 means run
    serially in-process (no pool, no pickling).  ``cache`` is an optional
    :class:`ResultCache` consulted before and populated after simulation.
    ``progress`` is called after every resolved job with
    ``(completed, total)`` — cache hits count immediately.

    Observability: ``observer_factory`` (a callable mapping a job to the
    event sinks to attach) and ``collect_metrics`` (gather a
    :class:`~repro.observability.metrics.MetricsSnapshot` per job into
    :attr:`metrics`) both force *observed mode*: every job simulates
    fresh, serially, in-process — sinks cannot be fed from the cache or
    pickled into a worker.  Measurements are unchanged either way
    (tracing is passive), so the cache is still *written*.

    Tiered execution: ``sampling`` (a :class:`SamplingConfig` with
    ``enabled=True``) rewrites every eligible job to run through the
    sampled engine.  The rewrite happens *before* cache-key computation,
    so sampled results and detailed results occupy disjoint cache
    entries.  Jobs a sampled system cannot represent (SMP, preemptive
    quanta, fault injection, the data cache) keep their detailed
    configuration — each such fallback is recorded in
    :attr:`sampling_fallbacks` as ``(job name, reason)`` and announced
    once through ``log`` (stderr by default), so a "sampled" sweep can
    never silently run detailed jobs.

    Config overrides: ``overrides`` (the mapping shape
    :func:`~repro.common.serialize.apply_overrides` takes, e.g.
    ``{"mem": {"enabled": True}}``) is merged over every job's own
    configuration before cache keys are computed.  This is how
    ``repro.api.run_experiment(id, config)`` and the CLI's ``--mem``
    reach each simulation point of a sweep.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
        observer_factory: Optional[Callable[[SimJob], Sequence]] = None,
        collect_metrics: bool = False,
        sampling: Optional[SamplingConfig] = None,
        overrides: Optional[Mapping] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError("SweepRunner needs at least one job slot")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.observer_factory = observer_factory
        self.collect_metrics = collect_metrics
        self.sampling = sampling
        self.overrides = dict(overrides) if overrides else None
        self.log = log if log is not None else _stderr_note
        #: job name -> MetricsSnapshot (populated when collect_metrics).
        self.metrics: dict = {}
        self.simulated = 0
        #: (job name, reason) for every job that requested sampling but
        #: had to run detailed.
        self.sampling_fallbacks: List[Tuple[str, str]] = []

    def _with_overrides(self, job: SimJob) -> SimJob:
        if not self.overrides:
            return job
        return replace(job, config=apply_overrides(job.config, self.overrides))

    def _with_sampling(self, job: SimJob) -> SimJob:
        if self.sampling is None or not self.sampling.enabled:
            return job
        try:
            return replace(
                job, config=replace(job.config, sampling=self.sampling)
            )
        except ConfigError as error:
            # Ineligible for sampling (SMP, quantum, faults, data cache):
            # run full detail, and say so — a sampled sweep that quietly
            # simulates detailed jobs misreports its own speedup.
            name = job.name or f"job {job_key(job)[:12]}"
            self.sampling_fallbacks.append((name, str(error)))
            self.log(
                f"note: {name} is ineligible for sampling and runs at "
                f"the detailed tier ({error})"
            )
            return job

    @property
    def observed(self) -> bool:
        """True when every job must simulate fresh, serially, in-process."""
        return self.observer_factory is not None or self.collect_metrics

    def run(self, jobs: Sequence[SimJob]) -> List[Result]:
        """Resolve every job; results are returned in input order."""
        jobs = [self._with_sampling(self._with_overrides(job)) for job in jobs]
        total = len(jobs)
        results: List[Optional[Result]] = [None] * total
        pending: List[Tuple[int, SimJob]] = []
        done = 0
        for index, job in enumerate(jobs):
            cached = (
                self.cache.get(job_key(job))
                if self.cache and not self.observed
                else None
            )
            if cached is not None:
                results[index] = cached
                done += 1
                if self.progress:
                    self.progress(done, total)
            else:
                pending.append((index, job))
        if pending:
            done = self._simulate(pending, results, done, total)
        return results  # type: ignore[return-value]

    def _execute_observed(self, job: SimJob) -> Result:
        observers = (
            self.observer_factory(job) if self.observer_factory else ()
        )
        system = run_system(job, observers)
        if self.collect_metrics:
            from repro.observability.metrics import MetricsSnapshot

            self.metrics[job.name or job_key(job)] = (
                MetricsSnapshot.from_system(system)
            )
        return _measure(system, job)

    def _simulate(
        self,
        pending: List[Tuple[int, SimJob]],
        results: List[Optional[Result]],
        done: int,
        total: int,
    ) -> int:
        if self.observed:
            for index, job in pending:
                done = self._resolve(
                    index, job, self._execute_observed(job), results, done, total
                )
            return done
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_job, job): (index, job)
                    for index, job in pending
                }
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        index, job = futures[future]
                        done = self._resolve(
                            index, job, future.result(), results, done, total
                        )
        else:
            for index, job in pending:
                done = self._resolve(
                    index, job, execute_job(job), results, done, total
                )
        return done

    def _resolve(
        self,
        index: int,
        job: SimJob,
        value: Result,
        results: List[Optional[Result]],
        done: int,
        total: int,
    ) -> int:
        results[index] = value
        self.simulated += 1
        if self.cache:
            self.cache.put(job_key(job), value, name=job.name)
        if self.progress:
            self.progress(done + 1, total)
        return done + 1

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache else 0


def default_runner() -> SweepRunner:
    """The runner used when an experiment is called without one: serial,
    uncached — exactly the behavior of inlining ``System(...).run()``."""
    return SweepRunner(jobs=1, cache=None)


def default_cache_dir() -> str:
    """Where the CLI keeps its cache: ``$CSB_CACHE_DIR`` if set, else
    ``~/.cache/csb-figures``."""
    configured = os.environ.get("CSB_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "csb-figures")
