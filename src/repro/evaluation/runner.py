"""Parallel sweep engine with a content-addressed on-disk result cache.

Every figure in the reproduction is a sweep of *independent* full-system
simulations; nothing about one (panel, scheme, size) point depends on any
other.  This module decomposes a sweep into picklable :class:`SimJob`
descriptors — a serialized :class:`~repro.common.config.SystemConfig`, the
kernel source, and the measurement to take — and executes them through a
:class:`SweepRunner` that can fan jobs out over a process pool and/or
resolve them from a content-addressed cache.

Determinism guarantee
---------------------

The simulator is fully deterministic: a job's result is a pure function of
its configuration, kernel, and measurement.  ``SweepRunner.run`` therefore
returns results in *input order* regardless of completion order, so a
parallel sweep is byte-identical to a serial one, and a cached result is
byte-identical to a fresh simulation (values round-trip exactly through
JSON).  The equivalence is enforced by tests/integration/test_runner.py.

Cache keys
----------

A cache entry is keyed by the SHA-256 of the canonical JSON of
(:data:`SIM_VERSION`, config, kernel, measurement, measurement args, warmed
addresses).  Changing any of those produces a different key; bump
:data:`SIM_VERSION` whenever a simulator change may alter timing so stale
entries can never be served.  Corrupt or truncated entries are treated as
misses and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

try:  # advisory cache locking (POSIX only; the cache degrades gracefully)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.common.config import SamplingConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.common.serialize import apply_overrides, config_to_dict
from repro.common.tables import Table
from repro.isa.assembler import assemble
from repro.sim.system import System
from repro.workloads.spec import ProgramWorkload, TraceWorkload

#: Simulator version tag baked into every cache key.  Bump whenever a
#: change to the simulator could alter any measured number.
SIM_VERSION = "csb-sim-2"

#: Measurement kinds a job may request.
MEASUREMENTS = ("store_bandwidth", "span")

#: Measurements a :class:`TraceJob` may request.  The ``latency_*``
#: entries map to tail percentiles of the per-record latency histogram.
TRACE_MEASUREMENTS = {
    "latency_p50": 50.0,
    "latency_p90": 90.0,
    "latency_p95": 95.0,
    "latency_p99": 99.0,
    "latency_p999": 99.9,
    "cycles": None,
    "transactions": None,
    "device_share": None,
    "mean_occupancy": None,
}

#: A job result: bytes-per-cycle (float) or a cycle span (int).
Result = Union[int, float]

#: Progress callback: (completed jobs so far, total jobs in this sweep).
ProgressFn = Callable[[int, int], None]


def _stderr_note(message: str) -> None:
    """Default SweepRunner log sink: one line to stderr (never stdout —
    table output must stay byte-identical)."""
    print(message, file=sys.stderr)


@dataclass(frozen=True)
class SimJob:
    """One simulation point, fully described and picklable.

    ``measurement`` selects what to read off the finished system:

    * ``"store_bandwidth"`` — bytes per bus cycle over the uncached-store
      window (the Figure 3/4 metric); ``args`` unused.
    * ``"span"`` — CPU cycles between two ``mark`` labels (the Figure 5
      metric); ``args`` is ``(start_label, end_label)``.

    ``warm`` lists addresses pre-loaded into the cache hierarchy before
    the run (e.g. the lock variable for the warm-lock panels).  ``name``
    is a display label only — it does not affect the result or the cache
    key.
    """

    config: SystemConfig
    kernel: str
    measurement: str = "store_bandwidth"
    args: Tuple[str, ...] = ()
    warm: Tuple[int, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if self.measurement not in MEASUREMENTS:
            raise ConfigError(
                f"unknown measurement {self.measurement!r}; "
                f"have {MEASUREMENTS}"
            )
        if self.measurement == "span" and len(self.args) != 2:
            raise ConfigError("span measurement needs (start, end) labels")

    @classmethod
    def from_workload(
        cls,
        workload: ProgramWorkload,
        config: SystemConfig,
        measurement: str = "store_bandwidth",
        name: str = "",
    ) -> "SimJob":
        """Build a job from a program-backed workload spec.

        The workload's ``span`` labels become the measurement args when
        ``measurement="span"``; its ``warm`` list carries over directly.
        Field-for-field identical to constructing the job by hand, so the
        cache key — and every previously cached result — is unchanged.
        """
        return cls(
            config=config,
            kernel=workload.source,
            measurement=measurement,
            args=workload.span if measurement == "span" else (),
            warm=workload.warm,
            name=name or workload.name,
        )

    def to_workload(self) -> ProgramWorkload:
        """The job's workload as a spec (for registry round-trips)."""
        return ProgramWorkload(
            name=self.name or "job",
            sources=((self.name or "job", self.kernel),),
            warm=self.warm,
            span=self.args if self.measurement == "span" else (),
        )


@dataclass(frozen=True)
class TraceJob:
    """One trace-replay point: a trace-backed workload, fully described.

    The counterpart of :class:`SimJob` for :class:`TraceWorkload` specs.
    ``measurement`` selects what to read off the finished replay:

    * ``"latency_p50" ... "latency_p999"`` — tail percentiles (CPU
      cycles) of the per-record latency histogram; ``args`` unused.
    * ``"cycles"`` / ``"transactions"`` — run length and records replayed.
    * ``"device_share"`` — fraction of all enqueued descriptors that
      landed on ring ``args[0]`` (the imbalance metric).
    * ``"mean_occupancy"`` — time-averaged depth of ring ``args[0]``.
    """

    config: SystemConfig
    workload: TraceWorkload
    measurement: str = "latency_p99"
    args: Tuple[str, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if self.measurement not in TRACE_MEASUREMENTS:
            raise ConfigError(
                f"unknown trace measurement {self.measurement!r}; "
                f"have {sorted(TRACE_MEASUREMENTS)}"
            )
        if self.measurement in ("device_share", "mean_occupancy"):
            if len(self.args) != 1:
                raise ConfigError(
                    f"{self.measurement} needs one arg: the device index"
                )
            try:
                int(self.args[0])
            except ValueError:
                raise ConfigError(
                    f"{self.measurement} device index must be an integer, "
                    f"got {self.args[0]!r}"
                ) from None


Job = Union[SimJob, "TraceJob"]


def execute_job(job: Job, observers: Sequence = ()) -> Result:
    """Build the system, run the workload to completion, measure.

    Pure: equal jobs always produce equal results.  This is the function a
    worker process runs, and also the serial fallback.  ``observers`` are
    event sinks attached before the run (tracing is passive, so an
    observed run returns the identical measurement).
    """
    if isinstance(job, TraceJob):
        return _measure_trace(_run_trace(job, observers), job)
    return _measure(run_system(job, observers), job)


def _run_trace(job: TraceJob, observers: Sequence = ()):
    from repro.workloads.traces.replay import TraceReplay

    replay = TraceReplay(job.workload, job.config)
    for sink in observers:
        replay.system.attach_observer(sink)
    return replay.run()


def _measure_trace(outcome, job: TraceJob) -> Result:
    percentile = TRACE_MEASUREMENTS[job.measurement]
    if percentile is not None:
        if not outcome.histogram.count:
            return 0
        return outcome.histogram.percentile(percentile)
    if job.measurement == "cycles":
        return outcome.cycles
    if job.measurement == "transactions":
        return outcome.replayed
    device = int(job.args[0])
    if device >= len(outcome.rings):
        raise ConfigError(
            f"measurement names device {device} but the replay attached "
            f"{len(outcome.rings)} rings"
        )
    if job.measurement == "mean_occupancy":
        return outcome.rings[device].mean_occupancy()
    total = sum(ring.enqueued for ring in outcome.rings)
    if not total:
        return 0.0
    return outcome.rings[device].enqueued / total


def run_system(job: SimJob, observers: Sequence = ()) -> System:
    """Build and run ``job``'s system, returning it for inspection.

    When the job's config enables sampling, the run goes through the
    tiered execution engine (:func:`repro.sim.sampling.run_sampled`);
    otherwise this is exactly ``System.run`` — sampling disabled means the
    detailed code path is untouched, byte for byte.
    """
    system = System(job.config)
    for sink in observers:
        system.attach_observer(sink)
    system.add_process(assemble(job.kernel, name=job.name or "job"))
    for address in job.warm:
        system.warm(address)
    if job.config.sampling.enabled:
        from repro.sim.sampling import run_sampled

        run_sampled(system)
    else:
        system.run()
    return system


def _measure(system: System, job: SimJob) -> Result:
    if job.measurement == "store_bandwidth":
        return system.store_bandwidth
    start, end = job.args
    raw = system.span(start, end)
    report = system.sampling_report
    if report is not None:
        # Sampled run: mark cycles freeze during fast-forward, so the raw
        # span misses skipped work; reconstruct it at the sampled CPI.
        return report.estimate_span(raw, start, end)
    return raw


def _digest(document: dict) -> str:
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def job_key(job: Job) -> str:
    """Content hash of everything that determines the job's result.

    Program jobs keep the historical key document exactly (cached results
    survive the workload-spec refactor).  Trace jobs key on the workload's
    own content-addressed :meth:`~repro.workloads.spec.TraceWorkload
    .cache_key`, so a renamed trace file with identical bytes still hits.
    """
    if isinstance(job, TraceJob):
        return _digest(
            {
                "version": SIM_VERSION,
                "kind": "trace-replay",
                "config": config_to_dict(job.config),
                "workload": job.workload.cache_key(),
                "measurement": job.measurement,
                "args": list(job.args),
            }
        )
    return _digest(
        {
            "version": SIM_VERSION,
            "config": config_to_dict(job.config),
            "kernel": job.kernel,
            "measurement": job.measurement,
            "args": list(job.args),
            "warm": list(job.warm),
        }
    )


def experiment_key(experiment_id: str, variant: str = "") -> str:
    """Cache key for a whole experiment table.

    Some studies are not decomposable into independent :class:`SimJob`
    points (attached devices, two-node clusters, mid-run bus injection),
    so the CLI caches their finished tables instead.  The key carries no
    config content — only the :data:`SIM_VERSION` discipline protects
    these entries, which is the same contract the job-level cache states
    for simulator changes.  ``variant`` distinguishes alternative
    executions of the same experiment (the CLI passes the serialized
    sampling override here, so sampled tables never alias detailed ones).
    """
    document = {
        "version": SIM_VERSION,
        "kind": "experiment-table",
        "experiment": experiment_id,
    }
    if variant:
        document["variant"] = variant
    return _digest(document)


def entry_digest(document: dict) -> str:
    """Integrity digest of a cache entry: SHA-256 of the canonical JSON of
    everything except the ``sha256`` field itself."""
    payload = {k: v for k, v in document.items() if k != "sha256"}
    return _digest(payload)


class ResultCache:
    """Content-addressed result store: one small JSON file per job key.

    Durability and integrity (the shared-store contract the campaign
    service relies on — see docs/campaigns.md):

    * **Atomic writes** — entries land via an fsynced temp file +
      ``os.replace``, so a worker killed mid-write can never leave a
      truncated entry under a final name.
    * **Integrity verification** — every entry carries a SHA-256 over its
      canonical payload, checked on read.  A corrupt or torn entry is
      *evicted* (deleted) and counted in :attr:`integrity_failures`, then
      recomputed as an ordinary miss — it is never served.  Entries
      written before the digest existed verify as legacy and still hit.
    * **Byte-budget LRU eviction** — with ``max_bytes`` set, every store
      evicts least-recently-used entries (file mtime; reads touch) until
      the directory fits the budget.  Evictions are counted in
      :attr:`evictions`; the entry just written always survives.
    * **Advisory locking** — mutations take an ``flock`` on
      ``<dir>/.lock`` so concurrent runners sharing a cache directory
      never interleave eviction scans and writes.  Readers stay lock-free
      (atomic replace makes every read a consistent snapshot).

    A read-only or full cache directory must never fail a sweep: all
    write-path OSErrors degrade to "no cache".
    """

    def __init__(self, directory: str, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ConfigError("cache max_bytes must be >= 1 when set")
        self.directory = directory
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.integrity_failures = 0
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    @contextmanager
    def _lock(self) -> Iterator[None]:
        """Advisory exclusive lock over cache mutations (best effort)."""
        if fcntl is None:
            yield
            return
        try:
            handle = open(os.path.join(self.directory, ".lock"), "a")
        except OSError:
            yield
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            handle.close()  # closing releases the flock

    def _load(self, key: str) -> Optional[dict]:
        """Read and integrity-check one entry document.

        Missing file: plain miss.  Unparseable file or digest mismatch:
        integrity failure — the entry is deleted so it is recomputed
        (and rewritten healthy) instead of failing forever.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            self.misses += 1
            return None
        try:
            document = json.loads(raw)
            if not isinstance(document, dict):
                raise ValueError("cache entry must be a JSON object")
            recorded = document.get("sha256")
            if recorded is not None and recorded != entry_digest(document):
                raise ValueError("cache entry digest mismatch")
        except ValueError:
            self.integrity_failures += 1
            self.misses += 1
            self._evict(path)
            return None
        self._touch(path)
        return document

    def _touch(self, path: str) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass

    def _evict(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def get(self, key: str) -> Optional[Result]:
        """The cached result for ``key``, or None (counted as a miss)."""
        document = self._load(key)
        if document is None:
            return None
        try:
            value = document["value"]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"bad cached value {value!r}")
        except (ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Result, name: str = "") -> None:
        self._write(key, {"version": SIM_VERSION, "name": name, "value": value})

    def get_table(self, key: str) -> Optional[Table]:
        """The cached table for ``key``, or None (counted as a miss)."""
        document = self._load(key)
        if document is None:
            return None
        try:
            table = Table.from_dict(document["table"])
        except (ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return table

    def put_table(self, key: str, table: Table, name: str = "") -> None:
        self._write(
            key, {"version": SIM_VERSION, "name": name, "table": table.to_dict()}
        )

    def _write(self, key: str, document: dict) -> None:
        document = dict(document)
        document["sha256"] = entry_digest(document)
        path = self._path(key)
        try:
            with self._lock():
                fd, temporary = tempfile.mkstemp(
                    dir=self.directory, suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        json.dump(document, handle)
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(temporary, path)
                except OSError:
                    try:
                        os.remove(temporary)
                    except OSError:
                        pass
                    return
                self.stores += 1
                self._evict_over_budget(keep=path)
        except OSError:
            # A read-only or full cache directory must never fail a sweep.
            return

    def _evict_over_budget(self, keep: str) -> None:
        """Delete least-recently-used entries until the budget holds.

        The entry at ``keep`` (the one just written) is never evicted —
        a cache that immediately drops what it stores would silently
        disable itself when one entry exceeds the budget.
        """
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for filename in os.listdir(self.directory):
            if not filename.endswith(".json"):
                continue
            path = os.path.join(self.directory, filename)
            try:
                status = os.stat(path)
            except OSError:
                continue
            entries.append((status.st_mtime_ns, path, status.st_size))
            total += status.st_size
        entries.sort()
        for _, path, size in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        """Counter snapshot in the ``cache.*`` namespace (the names the
        campaign status endpoint and docs/campaigns.md use)."""
        return {
            "cache.hits": self.hits,
            "cache.misses": self.misses,
            "cache.stores": self.stores,
            "cache.evictions": self.evictions,
            "cache.integrity_failures": self.integrity_failures,
        }


class SweepRunner:
    """Executes batches of :class:`SimJob` with caching and parallelism.

    ``jobs`` is the maximum number of worker processes; 1 means run
    serially in-process (no pool, no pickling).  ``cache`` is an optional
    :class:`ResultCache` consulted before and populated after simulation.
    ``progress`` is called after every resolved job with
    ``(completed, total)`` — cache hits count immediately.

    Observability: ``observer_factory`` (a callable mapping a job to the
    event sinks to attach) and ``collect_metrics`` (gather a
    :class:`~repro.observability.metrics.MetricsSnapshot` per job into
    :attr:`metrics`) both force *observed mode*: every job simulates
    fresh, serially, in-process — sinks cannot be fed from the cache or
    pickled into a worker.  Measurements are unchanged either way
    (tracing is passive), so the cache is still *written*.

    Tiered execution: ``sampling`` (a :class:`SamplingConfig` with
    ``enabled=True``) rewrites every eligible job to run through the
    sampled engine.  The rewrite happens *before* cache-key computation,
    so sampled results and detailed results occupy disjoint cache
    entries.  Jobs a sampled system cannot represent (SMP, preemptive
    quanta, fault injection, the data cache) keep their detailed
    configuration — each such fallback is recorded in
    :attr:`sampling_fallbacks` as ``(job name, reason)`` and announced
    once through ``log`` (stderr by default), so a "sampled" sweep can
    never silently run detailed jobs.

    Config overrides: ``overrides`` (the mapping shape
    :func:`~repro.common.serialize.apply_overrides` takes, e.g.
    ``{"mem": {"enabled": True}}``) is merged over every job's own
    configuration before cache keys are computed.  This is how
    ``repro.api.run_experiment(id, config)`` and the CLI's ``--mem``
    reach each simulation point of a sweep.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
        observer_factory: Optional[Callable[[SimJob], Sequence]] = None,
        collect_metrics: bool = False,
        sampling: Optional[SamplingConfig] = None,
        overrides: Optional[Mapping] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError("SweepRunner needs at least one job slot")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.observer_factory = observer_factory
        self.collect_metrics = collect_metrics
        self.sampling = sampling
        self.overrides = dict(overrides) if overrides else None
        self.log = log if log is not None else _stderr_note
        #: job name -> MetricsSnapshot (populated when collect_metrics).
        self.metrics: dict = {}
        self.simulated = 0
        #: (job name, reason) for every job that requested sampling but
        #: had to run detailed.
        self.sampling_fallbacks: List[Tuple[str, str]] = []

    def _with_overrides(self, job: Job) -> Job:
        if not self.overrides:
            return job
        return replace(job, config=apply_overrides(job.config, self.overrides))

    def _with_sampling(self, job: Job) -> Job:
        if self.sampling is None or not self.sampling.enabled:
            return job
        if isinstance(job, TraceJob):
            # Replay must observe every window in the detailed tier — a
            # fast-forwarded window has no bus transactions to attribute.
            name = job.name or f"job {job_key(job)[:12]}"
            reason = "trace replay always runs the detailed tier"
            self.sampling_fallbacks.append((name, reason))
            self.log(
                f"note: {name} is ineligible for sampling and runs at "
                f"the detailed tier ({reason})"
            )
            return job
        try:
            return replace(
                job, config=replace(job.config, sampling=self.sampling)
            )
        except ConfigError as error:
            # Ineligible for sampling (SMP, quantum, faults, data cache):
            # run full detail, and say so — a sampled sweep that quietly
            # simulates detailed jobs misreports its own speedup.
            name = job.name or f"job {job_key(job)[:12]}"
            self.sampling_fallbacks.append((name, str(error)))
            self.log(
                f"note: {name} is ineligible for sampling and runs at "
                f"the detailed tier ({error})"
            )
            return job

    @property
    def observed(self) -> bool:
        """True when every job must simulate fresh, serially, in-process."""
        return self.observer_factory is not None or self.collect_metrics

    def run(self, jobs: Sequence[Job]) -> List[Result]:
        """Resolve every job; results are returned in input order."""
        jobs = [self._with_sampling(self._with_overrides(job)) for job in jobs]
        total = len(jobs)
        results: List[Optional[Result]] = [None] * total
        pending: List[Tuple[int, Job]] = []
        done = 0
        for index, job in enumerate(jobs):
            cached = (
                self.cache.get(job_key(job))
                if self.cache and not self.observed
                else None
            )
            if cached is not None:
                results[index] = cached
                done += 1
                if self.progress:
                    self.progress(done, total)
            else:
                pending.append((index, job))
        if pending:
            done = self._simulate(pending, results, done, total)
        return results  # type: ignore[return-value]

    def _execute_observed(self, job: Job) -> Result:
        observers = (
            self.observer_factory(job) if self.observer_factory else ()
        )
        if isinstance(job, TraceJob):
            outcome = _run_trace(job, observers)
            if self.collect_metrics:
                self.metrics[job.name or job_key(job)] = outcome.metrics
            return _measure_trace(outcome, job)
        system = run_system(job, observers)
        if self.collect_metrics:
            from repro.observability.metrics import MetricsSnapshot

            self.metrics[job.name or job_key(job)] = (
                MetricsSnapshot.from_system(system)
            )
        return _measure(system, job)

    def _simulate(
        self,
        pending: List[Tuple[int, Job]],
        results: List[Optional[Result]],
        done: int,
        total: int,
    ) -> int:
        if self.observed:
            for index, job in pending:
                done = self._resolve(
                    index, job, self._execute_observed(job), results, done, total
                )
            return done
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_job, job): (index, job)
                    for index, job in pending
                }
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        index, job = futures[future]
                        done = self._resolve(
                            index, job, future.result(), results, done, total
                        )
        else:
            for index, job in pending:
                done = self._resolve(
                    index, job, execute_job(job), results, done, total
                )
        return done

    def _resolve(
        self,
        index: int,
        job: Job,
        value: Result,
        results: List[Optional[Result]],
        done: int,
        total: int,
    ) -> int:
        results[index] = value
        self.simulated += 1
        if self.cache:
            self.cache.put(job_key(job), value, name=job.name)
        if self.progress:
            self.progress(done + 1, total)
        return done + 1

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache else 0


def default_runner() -> SweepRunner:
    """The runner used when an experiment is called without one: serial,
    uncached — exactly the behavior of inlining ``System(...).run()``."""
    return SweepRunner(jobs=1, cache=None)


def default_cache_dir() -> str:
    """Where the CLI keeps its cache: ``$CSB_CACHE_DIR`` if set, else
    ``~/.cache/csb-figures``."""
    configured = os.environ.get("CSB_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "csb-figures")
