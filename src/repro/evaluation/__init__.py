"""Figure-reproduction harness.

One module per figure, a panel-specification table mapping every panel of
Figures 3 and 4 to its bus/line/overhead parameters (DESIGN.md §6), an
analytic steady-state bandwidth model used to cross-check the simulator,
and a CLI (``csb-figures``) that regenerates everything the paper's
evaluation section reports.
"""

from repro.evaluation.schemes import (
    SCHEME_CSB,
    SCHEME_NONE,
    all_schemes,
    hw_schemes,
    scheme_block,
)
from repro.evaluation.panels import (
    FIG3_PANELS,
    FIG4_PANELS,
    PanelSpec,
    panel_by_id,
)
from repro.evaluation.bandwidth import bandwidth_point, panel_table, system_for
from repro.evaluation.latency import fig5_table, latency_point
from repro.evaluation.analytic import (
    csb_steady_bandwidth,
    noncombining_bandwidth,
    transaction_cycles,
)

__all__ = [
    "FIG3_PANELS",
    "FIG4_PANELS",
    "PanelSpec",
    "SCHEME_CSB",
    "SCHEME_NONE",
    "all_schemes",
    "bandwidth_point",
    "csb_steady_bandwidth",
    "fig5_table",
    "hw_schemes",
    "latency_point",
    "noncombining_bandwidth",
    "panel_by_id",
    "panel_table",
    "scheme_block",
    "system_for",
    "transaction_cycles",
]
