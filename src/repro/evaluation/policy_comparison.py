"""Faithful processor-policy comparison (extension study).

The paper's Figure 3/4 baselines use a *generic* block-combining model.
This study compares the faithful models of the two processors the paper
cites — the PowerPC 620 (pairs of same-size consecutive stores) and the
MIPS R10000 uncached-accelerated buffer (strictly sequential patterns,
all-or-nothing line bursts) — against the generic model and the CSB, on
the paper's reference system (8-byte multiplexed bus, ratio 6, 64 B line).

Two workloads expose the difference:

* the sequential store stream of §4.2, where the R10000 buffer matches
  generic full-line combining, and
* the same stream with every line's stores issued out of order, which
  breaks the R10000's pattern detector ("this design is limited to
  strictly sequential access patterns", §6) while the generic model and
  the CSB are unaffected ("combining stores can be issued in any order",
  §3.2).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional

from repro.common.config import DOUBLEWORD, UncachedBufferConfig
from repro.common.tables import Table
from repro.memory.layout import IO_COMBINING_BASE, IO_UNCACHED_BASE
from repro.evaluation.bandwidth import config_for
from repro.evaluation.panels import FIG3_PANELS
from repro.evaluation.runner import (
    SimJob,
    SweepRunner,
    default_runner,
    execute_job,
)
from repro.workloads.spec import ProgramWorkload
from repro.workloads.storebw import store_kernel_csb, store_kernel_uncached

#: Schemes compared: generic baselines, faithful processor models, CSB.
POLICY_SCHEMES = ("none", "ppc620", "combine64", "r10000", "csb")

_SIZES = (16, 64, 256, 1024)


def _buffer_config(scheme: str) -> UncachedBufferConfig:
    if scheme == "none":
        return UncachedBufferConfig(combine_block=8)
    if scheme == "ppc620":
        return UncachedBufferConfig(combine_block=16, policy="ppc620")
    if scheme == "combine64":
        return UncachedBufferConfig(combine_block=64)
    if scheme == "r10000":
        return UncachedBufferConfig(combine_block=64, policy="r10000")
    raise ValueError(f"not an uncached-buffer scheme: {scheme!r}")


def interleaved_store_kernel(total_bytes: int, base: int = IO_UNCACHED_BASE) -> str:
    """The §4.2 stream with each line's doublewords issued out of order
    (even slots first, then odd) — sequential-pattern detectors break."""
    lines: List[str] = [f"set {base}, %o1", "set 0x5a5a5a5a, %l0"]
    dwords = total_bytes // DOUBLEWORD
    per_line = 8
    for line_start in range(0, dwords, per_line):
        in_line = min(per_line, dwords - line_start)
        slots = list(range(0, in_line, 2)) + list(range(1, in_line, 2))
        for slot in slots:
            offset = (line_start + slot) * DOUBLEWORD
            lines.append(f"stx %l0, [%o1+{offset}]")
    lines += ["membar", "halt"]
    return "\n".join(lines)


def policy_job(scheme: str, size: int, interleaved: bool) -> SimJob:
    """Describe one (scheme, transfer-size, store-order) point as a SimJob."""
    panel = FIG3_PANELS["e"]
    order = "shuffled" if interleaved else "sequential"
    if scheme == "csb":
        config = config_for(panel, "csb")
        source = store_kernel_csb(
            size, 64, IO_COMBINING_BASE, interleave=interleaved
        )
    else:
        config = replace(
            config_for(panel, "none"), uncached=_buffer_config(scheme)
        )
        if interleaved:
            source = interleaved_store_kernel(size)
        else:
            source = store_kernel_uncached(size)
    name = f"policy-{scheme}-{size}-{order}"
    return SimJob.from_workload(
        ProgramWorkload(name=name, sources=((name, source),)),
        config=config,
        measurement="store_bandwidth",
    )


def _measure(scheme: str, size: int, interleaved: bool) -> float:
    return execute_job(policy_job(scheme, size, interleaved))


def policy_table(
    sizes: Iterable[int] = _SIZES,
    interleaved: bool = False,
    runner: Optional[SweepRunner] = None,
) -> Table:
    """Rows = schemes, columns = transfer sizes."""
    sizes = list(sizes)
    if runner is None:
        runner = default_runner()
    jobs = [
        policy_job(scheme, size, interleaved)
        for scheme in POLICY_SCHEMES
        for size in sizes
    ]
    values = iter(runner.run(jobs))
    order = "out-of-order" if interleaved else "sequential"
    table = Table(
        ["scheme"] + [str(s) for s in sizes],
        title=f"Processor-policy comparison, {order} stores "
        "[bytes per bus cycle]",
    )
    for scheme in POLICY_SCHEMES:
        table.add_row(scheme, *[next(values) for _ in sizes])
    return table
