"""Faithful processor-policy comparison (extension study).

The paper's Figure 3/4 baselines use a *generic* block-combining model.
This study compares the faithful models of the two processors the paper
cites — the PowerPC 620 (pairs of same-size consecutive stores) and the
MIPS R10000 uncached-accelerated buffer (strictly sequential patterns,
all-or-nothing line bursts) — against the generic model and the CSB, on
the paper's reference system (8-byte multiplexed bus, ratio 6, 64 B line).

Two workloads expose the difference:

* the sequential store stream of §4.2, where the R10000 buffer matches
  generic full-line combining, and
* the same stream with every line's stores issued out of order, which
  breaks the R10000's pattern detector ("this design is limited to
  strictly sequential access patterns", §6) while the generic model and
  the CSB are unaffected ("combining stores can be issued in any order",
  §3.2).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List

from repro.common.config import DOUBLEWORD, UncachedBufferConfig
from repro.common.tables import Table
from repro.isa.assembler import assemble
from repro.memory.layout import IO_COMBINING_BASE, IO_UNCACHED_BASE
from repro.sim.system import System
from repro.evaluation.bandwidth import config_for
from repro.evaluation.panels import FIG3_PANELS
from repro.workloads.storebw import store_kernel_csb, store_kernel_uncached

#: Schemes compared: generic baselines, faithful processor models, CSB.
POLICY_SCHEMES = ("none", "ppc620", "combine64", "r10000", "csb")

_SIZES = (16, 64, 256, 1024)


def _buffer_config(scheme: str) -> UncachedBufferConfig:
    if scheme == "none":
        return UncachedBufferConfig(combine_block=8)
    if scheme == "ppc620":
        return UncachedBufferConfig(combine_block=16, policy="ppc620")
    if scheme == "combine64":
        return UncachedBufferConfig(combine_block=64)
    if scheme == "r10000":
        return UncachedBufferConfig(combine_block=64, policy="r10000")
    raise ValueError(f"not an uncached-buffer scheme: {scheme!r}")


def interleaved_store_kernel(total_bytes: int, base: int = IO_UNCACHED_BASE) -> str:
    """The §4.2 stream with each line's doublewords issued out of order
    (even slots first, then odd) — sequential-pattern detectors break."""
    lines: List[str] = [f"set {base}, %o1", "set 0x5a5a5a5a, %l0"]
    dwords = total_bytes // DOUBLEWORD
    per_line = 8
    for line_start in range(0, dwords, per_line):
        in_line = min(per_line, dwords - line_start)
        slots = list(range(0, in_line, 2)) + list(range(1, in_line, 2))
        for slot in slots:
            offset = (line_start + slot) * DOUBLEWORD
            lines.append(f"stx %l0, [%o1+{offset}]")
    lines += ["membar", "halt"]
    return "\n".join(lines)


def _measure(scheme: str, source_uncached: str, source_csb: str) -> float:
    panel = FIG3_PANELS["e"]
    if scheme == "csb":
        system = System(config_for(panel, "csb"))
        system.add_process(assemble(source_csb))
    else:
        config = replace(config_for(panel, "none"), uncached=_buffer_config(scheme))
        system = System(config)
        system.add_process(assemble(source_uncached))
    system.run()
    return system.store_bandwidth


def policy_table(
    sizes: Iterable[int] = _SIZES, interleaved: bool = False
) -> Table:
    """Rows = schemes, columns = transfer sizes."""
    sizes = list(sizes)
    order = "out-of-order" if interleaved else "sequential"
    table = Table(
        ["scheme"] + [str(s) for s in sizes],
        title=f"Processor-policy comparison, {order} stores "
        "[bytes per bus cycle]",
    )
    for scheme in POLICY_SCHEMES:
        row: List[object] = [scheme]
        for size in sizes:
            if interleaved:
                uncached_src = interleaved_store_kernel(size)
            else:
                uncached_src = store_kernel_uncached(size)
            csb_src = store_kernel_csb(
                size, 64, IO_COMBINING_BASE, interleave=interleaved
            )
            row.append(_measure(scheme, uncached_src, csb_src))
        table.add_row(*row)
    return table
