"""PIO vs DMA message-send crossover (paper §2 and §5).

The paper argues that DMA's setup overhead makes programmed I/O the better
transport for short messages (their citation [3] puts the break-even near
128 bytes), and that the CSB "moves the break-even point between PIO and
DMA towards bigger messages".  This module measures message latency — the
CPU cycles from the start of the send sequence until the NIC has the full
payload queued for transmission — for three send paths:

* ``pio_locked`` — lock, PIO copy into NIC packet memory, descriptor push,
  unlock (the conventional path).
* ``csb`` — payload committed through conditional-flush bursts; messages
  up to one cache line go inline straight into the TX FIFO, larger ones
  are burst into packet memory line by line and finished with a
  descriptor flush.  No lock.
* ``dma`` — program source/length, ring the doorbell; the engine fetches
  the payload and hands it to the NIC.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.common.config import DOUBLEWORD, SystemConfig
from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.devices.dma import DmaEngine
from repro.devices.nic import NetworkInterface, PACKET_MEMORY_OFFSET
from repro.isa.assembler import assemble
from repro.memory.layout import (
    IO_COMBINING_BASE,
    IO_UNCACHED_BASE,
    PageAttr,
    Region,
)
from repro.sim.system import System
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR, MARK_START
from repro.workloads.messaging import dma_send_kernel, pio_send_kernel

METHODS = ("pio_locked", "csb", "dma")

#: Message sizes swept (bytes).
MESSAGE_SIZES = (16, 32, 64, 128, 256, 512, 1024, 2048)

_NIC_COMBINING = IO_COMBINING_BASE
_NIC_UNCACHED = IO_UNCACHED_BASE
_DMA_BASE = IO_UNCACHED_BASE + 0x10_0000
_PAYLOAD_SRC = 0x8000


def _csb_multi_line_kernel(payload_bytes: int, nic_base: int, line_size: int) -> str:
    """CSB send: inline for one line, else packet memory + descriptor."""
    if payload_bytes <= line_size:
        from repro.workloads.messaging import csb_send_kernel

        return csb_send_kernel(payload_bytes, nic_base)
    from repro.devices.nic import DESC_OFFSET

    lines: List[str] = [
        f"mark {MARK_START}",
        f"set {nic_base + PACKET_MEMORY_OFFSET}, %o1",
        f"set {nic_base + DESC_OFFSET}, %o2",
    ]
    dwords_per_line = line_size // DOUBLEWORD
    emitted = 0
    group = 0
    total_dwords = payload_bytes // DOUBLEWORD
    while emitted < total_dwords:
        in_group = min(dwords_per_line, total_dwords - emitted)
        base = emitted * DOUBLEWORD
        lines.append(f".RETRY{group}:")
        lines.append(f"set {in_group}, %l4")
        for i in range(in_group):
            lines.append(f"stx %l{i % 4}, [%o1+{base + i * DOUBLEWORD}]")
        lines.append(f"swap [%o1+{base}], %l4")
        lines.append(f"cmp %l4, {in_group}")
        lines.append(f"bnz .RETRY{group}")
        emitted += in_group
        group += 1
    descriptor = (PACKET_MEMORY_OFFSET << 16) | payload_bytes
    lines += [
        ".RETRYD:",
        "set 1, %l4",
        f"set {descriptor}, %l5",
        "stx %l5, [%o2]",          # descriptor store (combining space)
        "swap [%o2], %l4",          # flush the descriptor line
        "cmp %l4, 1",
        "bnz .RETRYD",
        "halt",
    ]
    return "\n".join(lines)


def _build_system(
    method: str, config: Optional[SystemConfig] = None
) -> Tuple[System, NetworkInterface]:
    system = System(config)
    if method == "csb":
        region = Region(
            _NIC_COMBINING, 128 * 1024, PageAttr.UNCACHED_COMBINING, "nic"
        )
    else:
        region = Region(_NIC_UNCACHED, 128 * 1024, PageAttr.UNCACHED, "nic")
    nic = NetworkInterface(region)
    system.attach_device(nic)
    if method == "dma":
        dma_region = Region(_DMA_BASE, 8192, PageAttr.UNCACHED, "dma")
        # Setup/per-line costs calibrated so the conventional PIO/DMA
        # break-even lands near the ~128-byte point the paper cites from
        # its reference [3] ("PIO is better than DMA for messages shorter
        # than 128 bytes").
        system.attach_device(
            DmaEngine(
                dma_region,
                system.backing,
                nic,
                setup_cycles=16,
                cycles_per_line=8,
            )
        )
    return system, nic


def send_latency(
    method: str,
    payload_bytes: int,
    config: Optional[SystemConfig] = None,
    warm_lock: bool = True,
) -> int:
    """CPU cycles from send start until the NIC holds the full payload.

    ``config`` overrides the machine (e.g. the cached-crossover study
    enables the D-cache); ``warm_lock=False`` leaves the PIO path's lock
    line cold, so the first acquire misses.
    """
    if method not in METHODS:
        raise ConfigError(f"unknown send method {method!r}")
    if payload_bytes % DOUBLEWORD:
        raise ConfigError("payload must be a doubleword multiple")
    system, nic = _build_system(method, config)
    line_size = system.config.csb.line_size
    if method == "pio_locked":
        source = pio_send_kernel(
            payload_bytes, _NIC_UNCACHED, lock_addr=DEFAULT_LOCK_ADDR
        )
    elif method == "csb":
        source = _csb_multi_line_kernel(payload_bytes, _NIC_COMBINING, line_size)
    else:
        system.backing.fill(_PAYLOAD_SRC, payload_bytes, 0xA5)
        source = dma_send_kernel(_PAYLOAD_SRC, payload_bytes, _DMA_BASE)
    process = system.add_process(assemble(source, name=f"{method}-{payload_bytes}"))
    if method == "pio_locked" and warm_lock:
        system.warm(DEFAULT_LOCK_ADDR)
    system.run()
    if method == "csb" and payload_bytes <= line_size:
        packets = [p for p in nic.sent if p.inline]
    else:
        packets = [p for p in nic.sent if not p.inline]
    if len(packets) != 1:
        raise ConfigError(
            f"{method}/{payload_bytes}: expected one matching packet, "
            f"saw {len(packets)} (NIC sent {len(nic.sent)} total)"
        )
    pushed_cpu_cycle = packets[0].pushed_at * system.config.bus.cpu_ratio
    return pushed_cpu_cycle - system.stats.marks[MARK_START]


def crossover_table(sizes: Iterable[int] = MESSAGE_SIZES) -> Table:
    """Rows = send methods, columns = message sizes, cells = CPU cycles."""
    sizes = list(sizes)
    table = Table(
        ["method"] + [str(s) for s in sizes],
        title="PIO vs DMA message latency [CPU cycles to NIC hand-off]",
    )
    for method in METHODS:
        table.add_row(method, *[send_latency(method, size) for size in sizes])
    return table


def break_even(method: str, against: str = "dma",
               sizes: Iterable[int] = MESSAGE_SIZES) -> int:
    """Smallest message size at which ``against`` becomes at least as fast
    as ``method`` (returns a sentinel past the sweep if it never does)."""
    for size in sizes:
        if send_latency(against, size) <= send_latency(method, size):
            return size
    return max(sizes) * 2
