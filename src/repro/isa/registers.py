"""Register model: 32 integer registers, 32 floating-point registers, and the
integer condition-code register.

Registers are identified throughout the simulator by canonical string names:
``r0`` .. ``r31`` for the integer file, ``f0`` .. ``f31`` for the FP file, and
``icc`` for the condition codes.  SPARC windowed aliases (``%g0``-``%g7``,
``%o0``-``%o7``, ``%l0``-``%l7``, ``%i0``-``%i7``) map onto a flat file —
register windows are not modeled, which is irrelevant for leaf microbenchmark
kernels.  ``r0`` (``%g0``) is hardwired to zero, as on SPARC.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ReproError

GPR_COUNT = 32
FPR_COUNT = 32

#: Canonical name of the integer condition-code register.
ICC = "icc"

MASK64 = (1 << 64) - 1

_SPARC_GROUPS = {"g": 0, "o": 8, "l": 16, "i": 24}


class RegisterError(ReproError):
    """An unknown or malformed register name was used."""


def _build_alias_map() -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for group, base in _SPARC_GROUPS.items():
        for i in range(8):
            aliases[f"{group}{i}"] = f"r{base + i}"
    for i in range(GPR_COUNT):
        aliases[f"r{i}"] = f"r{i}"
    for i in range(FPR_COUNT):
        aliases[f"f{i}"] = f"f{i}"
    aliases[ICC] = ICC
    # Conventional special names map onto their window slots.
    aliases["sp"] = "r14"
    aliases["fp"] = "r30"
    return aliases


_ALIASES = _build_alias_map()


def canonical_register(name: str) -> str:
    """Normalize a register name (``%o1``, ``o1``, ``r9`` ...) to canonical form.

    Raises :class:`RegisterError` for unknown names.
    """
    stripped = name.strip().lstrip("%").lower()
    try:
        return _ALIASES[stripped]
    except KeyError:
        raise RegisterError(f"unknown register {name!r}") from None


def register_names() -> List[str]:
    """All canonical register names, integer file first."""
    return (
        [f"r{i}" for i in range(GPR_COUNT)]
        + [f"f{i}" for i in range(FPR_COUNT)]
        + [ICC]
    )


def is_fp_register(name: str) -> bool:
    return name.startswith("f") and name != "fp"


class RegisterFile:
    """Architectural register state for one process context.

    Values are stored as unsigned 64-bit integers; FP registers hold raw
    64-bit bit patterns (the microbenchmarks use them only as store sources,
    exactly as the paper's kernel does with ``std %f0``).
    """

    def __init__(self) -> None:
        self._values: Dict[str, int] = {name: 0 for name in register_names()}

    def read(self, name: str) -> int:
        name = canonical_register(name)
        if name == "r0":
            return 0
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        name = canonical_register(name)
        if name == "r0":
            return  # %g0 is hardwired to zero; writes are discarded.
        self._values[name] = value & MASK64

    @property
    def raw_values(self) -> Dict[str, int]:
        """The live name -> value mapping (fast-forward tier hot path).

        Callers must preserve the file's invariants: canonical names only,
        values masked to 64 bits, ``r0`` never written (reading it is safe —
        it is always zero in the mapping).
        """
        return self._values

    def snapshot(self) -> Dict[str, int]:
        """Copy of the full register state (for context switches and tests)."""
        return dict(self._values)

    def restore(self, snapshot: Dict[str, int]) -> None:
        missing = set(self._values) - set(snapshot)
        if missing:
            raise RegisterError(f"snapshot missing registers: {sorted(missing)}")
        for name in self._values:
            self._values[name] = snapshot[name] & MASK64
        self._values["r0"] = 0

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self._values.items() if v}
        return f"RegisterFile({nonzero!r})"
