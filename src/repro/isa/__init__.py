"""A small SPARC-flavoured instruction set, assembler, and register model.

The paper's microbenchmarks are hand-written SPARC V9 kernels (doubleword
stores, ``swap`` for lock acquisition and the CSB conditional flush,
``membar`` for ordering).  This package provides just enough of that ISA to
express those kernels, plus a two-pass textual assembler so benchmark sources
read like the paper's listing in §3.2.
"""

from repro.isa.registers import (
    GPR_COUNT,
    FPR_COUNT,
    ICC,
    RegisterFile,
    canonical_register,
    register_names,
)
from repro.isa.instructions import (
    AluInstruction,
    BranchInstruction,
    CompareInstruction,
    HaltInstruction,
    Instruction,
    LoadInstruction,
    MarkInstruction,
    MembarInstruction,
    NopInstruction,
    SetInstruction,
    StoreInstruction,
    SwapInstruction,
)
from repro.isa.program import Program
from repro.isa.assembler import assemble
from repro.isa import semantics

__all__ = [
    "AluInstruction",
    "BranchInstruction",
    "CompareInstruction",
    "FPR_COUNT",
    "GPR_COUNT",
    "HaltInstruction",
    "ICC",
    "Instruction",
    "LoadInstruction",
    "MarkInstruction",
    "MembarInstruction",
    "NopInstruction",
    "Program",
    "RegisterFile",
    "SetInstruction",
    "StoreInstruction",
    "SwapInstruction",
    "assemble",
    "canonical_register",
    "register_names",
    "semantics",
]
