"""Functional semantics: pure helpers the core uses to compute results.

All integer arithmetic is modulo 2**64 (values are stored unsigned); the
condition codes follow the SPARC icc definition (negative, zero, overflow,
carry of the 64-bit result, which is sufficient for the ``cmp``/branch idioms
the kernels use).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict

from repro.common.errors import SimulationError

MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63

#: Condition-code bit positions.
CC_N = 8
CC_Z = 4
CC_V = 2
CC_C = 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as signed."""
    value &= MASK64
    return value - (1 << 64) if value & SIGN64 else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into unsigned 64-bit representation."""
    return value & MASK64


def alu(op: str, a: int, b: int) -> int:
    """Compute an integer ALU operation on unsigned 64-bit operands."""
    a &= MASK64
    b &= MASK64
    if op == "add":
        return (a + b) & MASK64
    if op == "sub":
        return (a - b) & MASK64
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "sll":
        return (a << (b & 63)) & MASK64
    if op == "srl":
        return a >> (b & 63)
    if op == "sra":
        return to_unsigned(to_signed(a) >> (b & 63))
    if op == "mulx":
        return (a * b) & MASK64
    raise SimulationError(f"unknown ALU op {op!r}")


def fp_alu(op: str, a: int, b: int) -> int:
    """FP operations on raw 64-bit patterns.

    The microbenchmarks only move FP data around (the paper's kernel stores
    ``%f`` registers it never computes with), so FP arithmetic is modeled on
    the bit patterns as integers — latency is what matters, not IEEE results.
    """
    if op == "fmov":
        return a & MASK64
    if op == "fadd":
        return (a + b) & MASK64
    if op == "fsub":
        return (a - b) & MASK64
    if op == "fmul":
        return (a * b) & MASK64
    raise SimulationError(f"unknown FP op {op!r}")


#: Integer ALU mnemonics :func:`alu` implements.
ALU_OP_NAMES = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra", "mulx")

#: FP mnemonics :func:`fp_alu` implements.
FP_OP_NAMES = ("fmov", "fadd", "fsub", "fmul")

#: Table-driven dispatch over the same helpers: mnemonic -> a two-operand
#: callable.  The fast-forward decoder binds the callable once per decoded
#: instruction instead of re-branching on the mnemonic string every
#: execution, and because each entry is a partial application of
#: :func:`alu`/:func:`fp_alu` the functional results are the detailed
#: core's results by construction.
ALU_OPS: Dict[str, Callable[[int, int], int]] = {
    op: partial(alu, op) for op in ALU_OP_NAMES
}
FP_OPS: Dict[str, Callable[[int, int], int]] = {
    op: partial(fp_alu, op) for op in FP_OP_NAMES
}


def compare(a: int, b: int) -> int:
    """Compute icc flags for ``a - b`` (as SPARC ``cmp`` does via subcc)."""
    a &= MASK64
    b &= MASK64
    result = (a - b) & MASK64
    flags = 0
    if result & SIGN64:
        flags |= CC_N
    if result == 0:
        flags |= CC_Z
    # Signed overflow: operands have different signs and the result's sign
    # differs from the minuend's.
    if ((a ^ b) & SIGN64) and ((a ^ result) & SIGN64):
        flags |= CC_V
    if b > a:  # borrow
        flags |= CC_C
    return flags


def branch_taken(op: str, cc: int = 0, reg_value: int = 0) -> bool:
    """Evaluate a branch condition against condition codes or a register."""
    n = bool(cc & CC_N)
    z = bool(cc & CC_Z)
    v = bool(cc & CC_V)
    c = bool(cc & CC_C)
    if op == "ba":
        return True
    if op == "be":
        return z
    if op == "bne":
        return not z
    if op == "bg":
        return not (z or (n != v))
    if op == "ble":
        return z or (n != v)
    if op == "bge":
        return n == v
    if op == "bl":
        return n != v
    if op == "bgu":
        return not (c or z)
    if op == "bleu":
        return c or z
    if op == "brz":
        return (reg_value & MASK64) == 0
    if op == "brnz":
        return (reg_value & MASK64) != 0
    raise SimulationError(f"unknown branch op {op!r}")
