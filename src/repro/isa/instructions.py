"""Instruction set definition.

Each instruction is an immutable dataclass exposing the interface the
out-of-order core needs: source registers (:meth:`Instruction.sources`),
destination register (:meth:`Instruction.destination`), a functional-unit
class, and classification flags (branch / memory / store / barrier...).

Operands that may be either a register or an immediate are represented as a
``str`` (canonical register name) or an ``int`` (immediate value) — explicit
and cheap to test with ``isinstance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.common.errors import ReproError
from repro.isa.registers import ICC, canonical_register, is_fp_register

Operand = Union[str, int]

#: Functional unit classes.
FU_INT = "int"
FU_FP = "fp"
FU_MEM = "mem"
FU_NONE = "none"

ALU_OPS = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra", "mulx")
FP_OPS = ("fadd", "fsub", "fmul", "fmov")
BRANCH_OPS = ("ba", "be", "bne", "bg", "bge", "bl", "ble", "bgu", "bleu", "brz", "brnz")
LOAD_SIZES = (1, 2, 4, 8)


class InstructionError(ReproError):
    """An instruction was constructed with invalid operands."""


def _canon_operand(operand: Operand) -> Operand:
    if isinstance(operand, str):
        return canonical_register(operand)
    return operand


@dataclass(frozen=True)
class Instruction:
    """Base class; concrete instructions override the classification API.

    The classification flags are plain class attributes rather than
    properties: the core's pipeline loops read them millions of times per
    simulated run, and a property call costs several times a plain
    attribute load.  They are not annotated, so the dataclass machinery
    does not treat them as fields.
    """

    fu = FU_NONE
    is_branch = False
    is_mem = False
    is_load = False
    is_store = False
    is_swap = False
    is_membar = False
    is_mark = False
    is_halt = False

    def sources(self) -> Tuple[str, ...]:
        """Canonical names of registers this instruction reads."""
        return ()

    def destination(self) -> Optional[str]:
        """Canonical name of the register this instruction writes, if any."""
        return None


@dataclass(frozen=True)
class AluInstruction(Instruction):
    """``op rs1, operand2, rd`` — integer or floating-point arithmetic."""

    op: str
    rs1: str
    operand2: Operand
    rd: str

    def __post_init__(self) -> None:
        if self.op not in ALU_OPS and self.op not in FP_OPS:
            raise InstructionError(f"unknown ALU op {self.op!r}")
        object.__setattr__(self, "rs1", canonical_register(self.rs1))
        object.__setattr__(self, "operand2", _canon_operand(self.operand2))
        object.__setattr__(self, "rd", canonical_register(self.rd))
        if self.op in FP_OPS:
            operands = [self.rs1, self.rd]
            if isinstance(self.operand2, str):
                operands.append(self.operand2)
            if not all(is_fp_register(r) for r in operands):
                raise InstructionError(f"{self.op} requires FP registers")
        object.__setattr__(self, "fu", FU_FP if self.op in FP_OPS else FU_INT)

    def sources(self) -> Tuple[str, ...]:
        if isinstance(self.operand2, str):
            return (self.rs1, self.operand2)
        return (self.rs1,)

    def destination(self) -> Optional[str]:
        return self.rd


@dataclass(frozen=True)
class SetInstruction(Instruction):
    """``set imm, rd`` — load an immediate into a register."""

    value: int
    rd: str

    fu = FU_INT

    def __post_init__(self) -> None:
        object.__setattr__(self, "rd", canonical_register(self.rd))

    def destination(self) -> Optional[str]:
        return self.rd


@dataclass(frozen=True)
class CompareInstruction(Instruction):
    """``cmp rs1, operand2`` — set the integer condition codes from rs1 - op2."""

    rs1: str
    operand2: Operand

    fu = FU_INT

    def __post_init__(self) -> None:
        object.__setattr__(self, "rs1", canonical_register(self.rs1))
        object.__setattr__(self, "operand2", _canon_operand(self.operand2))

    def sources(self) -> Tuple[str, ...]:
        if isinstance(self.operand2, str):
            return (self.rs1, self.operand2)
        return (self.rs1,)

    def destination(self) -> Optional[str]:
        return ICC


@dataclass(frozen=True)
class BranchInstruction(Instruction):
    """Conditional or unconditional branch to a label.

    Condition-code branches (``be``/``bne``/``bg``...) read ``icc``;
    register branches (``brz``/``brnz``) read their register operand.
    """

    op: str
    target: str
    rs1: Optional[str] = None

    fu = FU_INT
    is_branch = True

    def __post_init__(self) -> None:
        if self.op not in BRANCH_OPS:
            raise InstructionError(f"unknown branch op {self.op!r}")
        if self.op in ("brz", "brnz"):
            if self.rs1 is None:
                raise InstructionError(f"{self.op} requires a register operand")
            object.__setattr__(self, "rs1", canonical_register(self.rs1))
        elif self.rs1 is not None:
            raise InstructionError(f"{self.op} takes no register operand")

    def sources(self) -> Tuple[str, ...]:
        if self.op == "ba":
            return ()
        if self.op in ("brz", "brnz"):
            assert self.rs1 is not None
            return (self.rs1,)
        return (ICC,)


@dataclass(frozen=True)
class _MemoryInstruction(Instruction):
    """Shared shape of loads, stores, and swaps: ``[base + offset]``.

    ``offset`` may be an immediate or an index register.
    """

    base: str
    offset: Operand = 0

    fu = FU_MEM
    is_mem = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", canonical_register(self.base))
        object.__setattr__(self, "offset", _canon_operand(self.offset))

    def address_sources(self) -> Tuple[str, ...]:
        if isinstance(self.offset, str):
            return (self.base, self.offset)
        return (self.base,)


@dataclass(frozen=True)
class LoadInstruction(_MemoryInstruction):
    """``ld/ldd/ldx [base+offset], rd``."""

    rd: str = "r0"
    size: int = 4

    is_load = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.size not in LOAD_SIZES:
            raise InstructionError(f"bad load size {self.size}")
        object.__setattr__(self, "rd", canonical_register(self.rd))
        if is_fp_register(self.rd) and self.size != 8:
            raise InstructionError("FP loads must be doubleword (ldd)")

    def sources(self) -> Tuple[str, ...]:
        return self.address_sources()

    def destination(self) -> Optional[str]:
        return self.rd


@dataclass(frozen=True)
class StoreInstruction(_MemoryInstruction):
    """``st/std/stx rs, [base+offset]``."""

    rs: str = "r0"
    size: int = 4

    is_store = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.size not in LOAD_SIZES:
            raise InstructionError(f"bad store size {self.size}")
        object.__setattr__(self, "rs", canonical_register(self.rs))
        if is_fp_register(self.rs) and self.size != 8:
            raise InstructionError("FP stores must be doubleword (std)")

    def sources(self) -> Tuple[str, ...]:
        return self.address_sources() + (self.rs,)


#: FP registers a block store reads, in order (VIS block move semantics).
BLOCK_STORE_REGS = tuple(f"f{i * 2}" for i in range(8))


@dataclass(frozen=True)
class BlockStoreInstruction(_MemoryInstruction):
    """``stblk [base+offset]`` — SPARC V9 VIS-style block store (§6).

    Transfers a full 64-byte line from the even FP registers
    (%f0, %f2 ... %f14) to a line-aligned address in one atomic burst,
    bypassing the cache hierarchy.  Atomicity comes for free (registers
    are saved/restored on context switch), but the data must first be
    marshalled into FP registers — the cost the paper's related-work
    section holds against this mechanism.
    """

    size = 64
    is_store = True

    def sources(self) -> Tuple[str, ...]:
        return self.address_sources() + BLOCK_STORE_REGS


@dataclass(frozen=True)
class SwapInstruction(_MemoryInstruction):
    """``swap [base+offset], rd`` — atomic exchange of rd with memory.

    On cached space this is the classic SPARC atomic used to build spin
    locks.  On uncached *combining* space it is the CSB conditional flush
    (paper §3.1): rd supplies the expected hit-counter value and receives
    either that same value (flush succeeded) or zero (conflict).
    """

    rd: str = "r0"

    is_swap = True
    is_load = True
    is_store = True
    size = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "rd", canonical_register(self.rd))

    def sources(self) -> Tuple[str, ...]:
        return self.address_sources() + (self.rd,)

    def destination(self) -> Optional[str]:
        return self.rd


@dataclass(frozen=True)
class LoadLinkedInstruction(_MemoryInstruction):
    """``ll [base+offset], rd`` — load-linked (MIPS-style, paper §4.3.2).

    A doubleword cached load that also arms the core's link register on
    the loaded line.  Any store to that line, a squash, or a context
    switch breaks the link.
    """

    rd: str = "r0"

    is_load = True
    size = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "rd", canonical_register(self.rd))

    def sources(self) -> Tuple[str, ...]:
        return self.address_sources()

    def destination(self) -> Optional[str]:
        return self.rd


@dataclass(frozen=True)
class StoreConditionalInstruction(_MemoryInstruction):
    """``sc rs, [base+offset], rd`` — store-conditional.

    Stores ``rs`` to the linked line iff the link is still intact; ``rd``
    receives 1 on success, 0 on failure.  Depending on the implementation
    (``CoreConfig.sc_bus_transaction``), a successful store-conditional
    also performs a bus transaction even when the line hits in the cache —
    the cost the paper's discussion holds against this mechanism.
    """

    rs: str = "r0"
    rd: str = "r0"

    is_store = True
    size = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "rs", canonical_register(self.rs))
        object.__setattr__(self, "rd", canonical_register(self.rd))

    def sources(self) -> Tuple[str, ...]:
        return self.address_sources() + (self.rs,)

    def destination(self) -> Optional[str]:
        return self.rd


@dataclass(frozen=True)
class MembarInstruction(Instruction):
    """Memory barrier: may not graduate until the uncached buffer is empty
    and all earlier memory operations have completed (paper §4.1)."""

    fu = FU_MEM
    is_mem = True
    is_membar = True


@dataclass(frozen=True)
class MarkInstruction(Instruction):
    """Measurement pseudo-instruction: records its retire cycle under
    ``label``.  Costs nothing and uses no functional unit; benchmark kernels
    bracket regions of interest with marks."""

    label: str = field(default="mark")

    is_mark = True


@dataclass(frozen=True)
class NopInstruction(Instruction):
    """Does nothing; occupies a dispatch slot like a real nop."""

    fu = FU_INT


@dataclass(frozen=True)
class HaltInstruction(Instruction):
    """Stops the simulated program when it retires."""

    is_halt = True
