"""Disassembler: turn instructions and programs back into assembly text.

The inverse of :mod:`repro.isa.assembler` — used by the pipeline trace to
label dynamic instructions and by tests to check assemble/disassemble
round-trips.  The output re-assembles to a structurally identical program
(labels are regenerated as ``L<index>``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ReproError
from repro.isa.instructions import (
    AluInstruction,
    BlockStoreInstruction,
    LoadLinkedInstruction,
    StoreConditionalInstruction,
    BranchInstruction,
    CompareInstruction,
    HaltInstruction,
    Instruction,
    LoadInstruction,
    MarkInstruction,
    MembarInstruction,
    NopInstruction,
    SetInstruction,
    StoreInstruction,
    SwapInstruction,
)
from repro.isa.program import Program

_LOAD_MNEMONICS = {1: "ldub", 2: "lduh", 4: "ld", 8: "ldx"}
_STORE_MNEMONICS = {1: "stb", 2: "sth", 4: "st", 8: "stx"}


def _reg(name: str) -> str:
    return f"%{name}"


def _operand(value) -> str:
    if isinstance(value, str):
        return _reg(value)
    return str(value)


def _memref(base: str, offset) -> str:
    if isinstance(offset, str):
        return f"[{_reg(base)}+{_reg(offset)}]"
    if offset == 0:
        return f"[{_reg(base)}]"
    sign = "+" if offset >= 0 else "-"
    return f"[{_reg(base)}{sign}{abs(offset)}]"


def disassemble_instruction(
    instruction: Instruction,
    labels: Optional[Dict[int, str]] = None,
    target: Optional[int] = None,
) -> str:
    """Render one instruction.  Branches need their resolved ``target``
    index and the ``labels`` map to name it."""
    if isinstance(instruction, SetInstruction):
        return f"set {instruction.value}, {_reg(instruction.rd)}"
    if isinstance(instruction, CompareInstruction):
        return f"cmp {_reg(instruction.rs1)}, {_operand(instruction.operand2)}"
    if isinstance(instruction, AluInstruction):
        return (
            f"{instruction.op} {_reg(instruction.rs1)}, "
            f"{_operand(instruction.operand2)}, {_reg(instruction.rd)}"
        )
    if isinstance(instruction, BranchInstruction):
        if labels is None or target is None:
            name = instruction.target
        else:
            name = labels[target]
        if instruction.op in ("brz", "brnz"):
            return f"{instruction.op} {_reg(instruction.rs1)}, {name}"
        return f"{instruction.op} {name}"
    if isinstance(instruction, SwapInstruction):
        return (
            f"swap {_memref(instruction.base, instruction.offset)}, "
            f"{_reg(instruction.rd)}"
        )
    if isinstance(instruction, LoadLinkedInstruction):
        return (
            f"ll {_memref(instruction.base, instruction.offset)}, "
            f"{_reg(instruction.rd)}"
        )
    if isinstance(instruction, StoreConditionalInstruction):
        return (
            f"sc {_reg(instruction.rs)}, "
            f"{_memref(instruction.base, instruction.offset)}, "
            f"{_reg(instruction.rd)}"
        )
    if isinstance(instruction, BlockStoreInstruction):
        return f"stblk {_memref(instruction.base, instruction.offset)}"
    if isinstance(instruction, LoadInstruction):
        mnemonic = "ldd" if instruction.rd.startswith("f") else _LOAD_MNEMONICS[
            instruction.size
        ]
        return (
            f"{mnemonic} {_memref(instruction.base, instruction.offset)}, "
            f"{_reg(instruction.rd)}"
        )
    if isinstance(instruction, StoreInstruction):
        mnemonic = "std" if instruction.rs.startswith("f") else _STORE_MNEMONICS[
            instruction.size
        ]
        return (
            f"{mnemonic} {_reg(instruction.rs)}, "
            f"{_memref(instruction.base, instruction.offset)}"
        )
    if isinstance(instruction, MembarInstruction):
        return "membar"
    if isinstance(instruction, MarkInstruction):
        return f"mark {instruction.label}"
    if isinstance(instruction, NopInstruction):
        return "nop"
    if isinstance(instruction, HaltInstruction):
        return "halt"
    raise ReproError(f"cannot disassemble {type(instruction).__name__}")


def disassemble(program: Program) -> str:
    """Render a whole program as re-assemblable text."""
    # Collect every branch-target index and give it a label.
    targets = sorted(
        {
            program.target_of(instruction)
            for instruction in program
            if isinstance(instruction, BranchInstruction)
        }
    )
    labels = {index: f"L{index}" for index in targets}
    lines: List[str] = []
    for index, instruction in enumerate(program):
        if index in labels:
            lines.append(f"{labels[index]}:")
        if isinstance(instruction, BranchInstruction):
            text = disassemble_instruction(
                instruction, labels, program.target_of(instruction)
            )
        else:
            text = disassemble_instruction(instruction)
        lines.append(text)
    return "\n".join(lines)
