"""A small two-pass assembler for the SPARC-flavoured ISA.

Accepted syntax mirrors the paper's listing in §3.2::

    .RETRY:
    set 8, %l4          ! expected value
    std %f0, [%o1]
    std %f10, [%o1+40]
    swap [%o1], %l4     ! conditional flush
    cmp %l4, 8
    bnz .RETRY          ! retry on failure
    halt

Comments start with ``!`` or ``//``.  A label is any token ending in ``:``;
it may share a line with an instruction.  Memory operands are
``[reg]``, ``[reg+imm]``, ``[reg-imm]``, ``[reg+reg]`` or ``[imm]``.
``bnz``/``bz`` are accepted as aliases for ``bne``/``be`` (the paper's
listing uses ``bnz`` after ``cmp``).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.common.errors import AssemblyError
from repro.isa.instructions import (
    AluInstruction,
    BlockStoreInstruction,
    BranchInstruction,
    CompareInstruction,
    HaltInstruction,
    Instruction,
    LoadInstruction,
    LoadLinkedInstruction,
    MarkInstruction,
    MembarInstruction,
    NopInstruction,
    SetInstruction,
    StoreConditionalInstruction,
    StoreInstruction,
    SwapInstruction,
    ALU_OPS,
    FP_OPS,
)
from repro.isa.program import Program

Operand = Union[str, int]

_LOAD_SIZES = {"ldub": 1, "lduh": 2, "ld": 4, "ldx": 8, "ldd": 8}
_STORE_SIZES = {"stb": 1, "sth": 2, "st": 4, "stx": 8, "std": 8}
_BRANCH_ALIASES = {"bz": "be", "bnz": "bne"}
_CC_BRANCHES = ("ba", "be", "bne", "bg", "bge", "bl", "ble", "bgu", "bleu")

_MEM_RE = re.compile(
    r"^\[\s*(?P<base>%?\w+)\s*(?:(?P<sign>[+-])\s*(?P<off>%?\w+)\s*)?\]$"
)


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` into a finalized :class:`Program`."""
    program = Program(name)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        line = _consume_labels(program, line, lineno)
        if not line:
            continue
        try:
            program.add(_parse_instruction(line, lineno))
        except AssemblyError:
            raise
        except Exception as exc:  # operand validation errors from the ISA
            raise AssemblyError(f"{line!r}: {exc}", lineno) from exc
    try:
        return program.finalize()
    except Exception as exc:
        raise AssemblyError(str(exc)) from exc


def _strip_comment(line: str) -> str:
    for marker in ("!", "//"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line


def _consume_labels(program: Program, line: str, lineno: int) -> str:
    """Peel off leading ``name:`` labels; returns the remaining text."""
    while True:
        match = re.match(r"^(\.?\w+):\s*(.*)$", line)
        if not match:
            return line
        try:
            program.label(match.group(1))
        except Exception as exc:
            raise AssemblyError(str(exc), lineno) from exc
        line = match.group(2)
        if not line:
            return ""


def _split_operands(text: str) -> List[str]:
    if not text.strip():
        return []
    return [part.strip() for part in text.split(",")]


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected integer, got {token!r}", lineno) from None


def _parse_operand(token: str, lineno: int) -> Operand:
    """A register (``%o1`` / ``r9``) or an immediate."""
    if token.startswith("%") or re.match(r"^[a-zA-Z]", token):
        return token
    return _parse_int(token, lineno)


def _parse_memref(token: str, lineno: int) -> Tuple[str, Operand]:
    match = _MEM_RE.match(token)
    if not match:
        raise AssemblyError(f"bad memory operand {token!r}", lineno)
    base_tok = match.group("base")
    off_tok: Optional[str] = match.group("off")
    sign = -1 if match.group("sign") == "-" else 1
    if not base_tok.startswith("%") and base_tok[0].isdigit():
        # [imm] — absolute address via the zero register.
        if off_tok is not None:
            raise AssemblyError(f"bad memory operand {token!r}", lineno)
        return "r0", _parse_int(base_tok, lineno)
    if off_tok is None:
        return base_tok, 0
    if off_tok.startswith("%") or off_tok[0].isalpha():
        if sign < 0:
            raise AssemblyError("register offsets cannot be negated", lineno)
        return base_tok, off_tok
    return base_tok, sign * _parse_int(off_tok, lineno)


def _expect(operands: List[str], count: int, mnemonic: str, lineno: int) -> None:
    if len(operands) != count:
        raise AssemblyError(
            f"{mnemonic} expects {count} operand(s), got {len(operands)}", lineno
        )


def _parse_instruction(line: str, lineno: int) -> Instruction:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    operands = _split_operands(parts[1]) if len(parts) > 1 else []

    if mnemonic in ("nop",):
        _expect(operands, 0, mnemonic, lineno)
        return NopInstruction()
    if mnemonic == "halt":
        _expect(operands, 0, mnemonic, lineno)
        return HaltInstruction()
    if mnemonic == "membar":
        # Accept and ignore an ordering-constraint operand like "#Sync".
        return MembarInstruction()
    if mnemonic == "mark":
        _expect(operands, 1, mnemonic, lineno)
        return MarkInstruction(label=operands[0])
    if mnemonic == "set":
        _expect(operands, 2, mnemonic, lineno)
        return SetInstruction(value=_parse_int(operands[0], lineno), rd=operands[1])
    if mnemonic == "mov":
        _expect(operands, 2, mnemonic, lineno)
        src = _parse_operand(operands[0], lineno)
        if isinstance(src, int):
            return SetInstruction(value=src, rd=operands[1])
        return AluInstruction(op="or", rs1=src, operand2=0, rd=operands[1])
    if mnemonic == "cmp":
        _expect(operands, 2, mnemonic, lineno)
        return CompareInstruction(
            rs1=operands[0], operand2=_parse_operand(operands[1], lineno)
        )
    if mnemonic in ALU_OPS:
        _expect(operands, 3, mnemonic, lineno)
        return AluInstruction(
            op=mnemonic,
            rs1=operands[0],
            operand2=_parse_operand(operands[1], lineno),
            rd=operands[2],
        )
    if mnemonic in FP_OPS:
        if mnemonic == "fmov":
            _expect(operands, 2, mnemonic, lineno)
            return AluInstruction(
                op="fmov", rs1=operands[0], operand2=operands[0], rd=operands[1]
            )
        _expect(operands, 3, mnemonic, lineno)
        return AluInstruction(
            op=mnemonic, rs1=operands[0], operand2=operands[1], rd=operands[2]
        )
    if mnemonic in _BRANCH_ALIASES or mnemonic in _CC_BRANCHES:
        _expect(operands, 1, mnemonic, lineno)
        op = _BRANCH_ALIASES.get(mnemonic, mnemonic)
        return BranchInstruction(op=op, target=operands[0])
    if mnemonic in ("brz", "brnz"):
        _expect(operands, 2, mnemonic, lineno)
        return BranchInstruction(op=mnemonic, target=operands[1], rs1=operands[0])
    if mnemonic in _LOAD_SIZES:
        _expect(operands, 2, mnemonic, lineno)
        base, offset = _parse_memref(operands[0], lineno)
        return LoadInstruction(
            base=base, offset=offset, rd=operands[1], size=_LOAD_SIZES[mnemonic]
        )
    if mnemonic in _STORE_SIZES:
        _expect(operands, 2, mnemonic, lineno)
        base, offset = _parse_memref(operands[1], lineno)
        return StoreInstruction(
            base=base, offset=offset, rs=operands[0], size=_STORE_SIZES[mnemonic]
        )
    if mnemonic == "swap":
        _expect(operands, 2, mnemonic, lineno)
        base, offset = _parse_memref(operands[0], lineno)
        return SwapInstruction(base=base, offset=offset, rd=operands[1])
    if mnemonic == "stblk":
        _expect(operands, 1, mnemonic, lineno)
        base, offset = _parse_memref(operands[0], lineno)
        return BlockStoreInstruction(base=base, offset=offset)
    if mnemonic == "ll":
        _expect(operands, 2, mnemonic, lineno)
        base, offset = _parse_memref(operands[0], lineno)
        return LoadLinkedInstruction(base=base, offset=offset, rd=operands[1])
    if mnemonic == "sc":
        _expect(operands, 3, mnemonic, lineno)
        base, offset = _parse_memref(operands[1], lineno)
        return StoreConditionalInstruction(
            base=base, offset=offset, rs=operands[0], rd=operands[2]
        )
    raise AssemblyError(f"unknown mnemonic {mnemonic!r}", lineno)
