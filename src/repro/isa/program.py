"""Program container: an instruction sequence with symbolic labels.

The simulator addresses instructions by index (a perfect instruction fetch
path is assumed — the paper's kernels are tiny loops that would live entirely
in any L1 I-cache).  Labels are resolved to indices when the program is
finalized; branch targets are looked up through the program rather than
stored in the (immutable) instructions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.common.errors import ReproError
from repro.isa.instructions import BranchInstruction, HaltInstruction, Instruction


class ProgramError(ReproError):
    """Label/branch inconsistencies detected while building a program."""


class Program:
    """An ordered list of instructions plus a label table.

    Build incrementally with :meth:`add` / :meth:`label`, then call
    :meth:`finalize` (or use :func:`repro.isa.assembler.assemble`, which
    finalizes for you).  Iteration yields instructions in order.
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._finalized = False

    def add(self, instruction: Instruction) -> int:
        """Append an instruction; returns its index."""
        self._mutable()
        self._instructions.append(instruction)
        return len(self._instructions) - 1

    def extend(self, instructions: Iterable[Instruction]) -> None:
        for instruction in instructions:
            self.add(instruction)

    def label(self, name: str) -> None:
        """Define ``name`` to point at the next instruction added."""
        self._mutable()
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def finalize(self) -> "Program":
        """Validate: every branch target exists, program ends in a halt."""
        if self._finalized:
            return self
        if not self._instructions:
            raise ProgramError("empty program")
        for index, instruction in enumerate(self._instructions):
            if isinstance(instruction, BranchInstruction):
                if instruction.target not in self._labels:
                    raise ProgramError(
                        f"instruction {index}: undefined label {instruction.target!r}"
                    )
                if self._labels[instruction.target] >= len(self._instructions):
                    raise ProgramError(
                        f"label {instruction.target!r} points past the end"
                    )
        if not isinstance(self._instructions[-1], HaltInstruction):
            raise ProgramError("program must end with halt")
        self._finalized = True
        return self

    def _mutable(self) -> None:
        if self._finalized:
            raise ProgramError("program is finalized")

    @property
    def finalized(self) -> bool:
        return self._finalized

    def content_key(self) -> tuple:
        """Hashable identity of the finalized instruction stream.

        Instructions are frozen dataclasses and labels resolve to indices,
        so two programs with equal keys decode identically — the
        fast-forward tier uses this to cache pre-decoded programs.
        """
        if not self._finalized:
            raise ProgramError("content_key requires a finalized program")
        return (
            tuple(self._instructions),
            tuple(sorted(self._labels.items())),
        )

    def target_of(self, instruction: BranchInstruction) -> int:
        """Resolved index of a branch's target label."""
        try:
            return self._labels[instruction.target]
        except KeyError:
            raise ProgramError(f"undefined label {instruction.target!r}") from None

    def label_index(self, name: str) -> int:
        try:
            return self._labels[name]
        except KeyError:
            raise ProgramError(f"undefined label {name!r}") from None

    def fetch(self, index: int) -> Optional[Instruction]:
        """Instruction at ``index`` or None when past the end."""
        if 0 <= index < len(self._instructions):
            return self._instructions[index]
        return None

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self)} instructions)"
