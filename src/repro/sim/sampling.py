"""Sampled cycle-accurate simulation: the tiered execution controller.

SMARTS-style sampling (Wunderlich et al., ISCA 2003, adapted to this
simulator's scale): execution alternates between three phases driven by
:class:`~repro.common.config.SamplingConfig` —

1. **detailed warmup** (``warmup_cycles``): full cycle-accurate execution
   whose measurements are discarded; it re-warms the timing-plane state
   (caches, TLB, bus pipelines, uncached buffer occupancy) that the
   functional tier does not model.
2. **detailed measurement** (``window_cycles``): full cycle-accurate
   execution recorded as one :class:`WindowSample`.
3. **functional fast-forward** (``ff_instructions``): the
   :class:`~repro.sim.fastforward.FastForwarder` advances architectural
   state only.  The cycle clock freezes, so all detailed phases form one
   contiguous span in simulated time and cumulative rate metrics (the
   paper's bytes-per-bus-cycle) remain directly meaningful.

Between a measurement window and a fast-forward phase the pipeline is
drained and all I/O completes — the architectural hand-off point the
fast-forward tier requires.

Per-window samples aggregate into :class:`Estimate` values (mean plus a
normal-approximation confidence interval; the z-table below covers the
confidence levels :data:`~repro.common.config.CONFIDENCE_LEVELS` allows,
so no SciPy dependency).  Interval metrics (Figure 5's lock-handoff span)
are *reconstructed*: marks retired during fast-forward know only how many
instructions were skipped, so :meth:`SamplingReport.estimate_span` adds
``skipped_instructions x estimated CPI`` to the raw (detailed-only) span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.config import SamplingConfig
from repro.common.errors import ConfigError, DeadlockError
from repro.sim.fastforward import FastForwarder

#: Two-sided normal quantiles for the supported confidence levels.
Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class WindowSample:
    """One detailed measurement window."""

    index: int
    start_cycle: int
    cycles: int
    instructions: int
    store_bytes: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "index": self.index,
            "start_cycle": self.start_cycle,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "store_bytes": self.store_bytes,
        }


@dataclass(frozen=True)
class Estimate:
    """A sampled mean with its confidence-interval half-width."""

    mean: float
    half_width: float
    samples: int
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def to_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "half_width": self.half_width,
            "samples": self.samples,
            "confidence": self.confidence,
        }


def _estimate(samples: List[float], confidence: float) -> Estimate:
    n = len(samples)
    if n == 0:
        return Estimate(0.0, 0.0, 0, confidence)
    mean = sum(samples) / n
    if n < 2:
        return Estimate(mean, 0.0, n, confidence)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    half = Z_SCORES[confidence] * (variance**0.5) / (n**0.5)
    return Estimate(mean, half, n, confidence)


@dataclass(frozen=True)
class SamplingReport:
    """What a sampled run measured, and how to extrapolate from it."""

    config: SamplingConfig
    windows: Tuple[WindowSample, ...]
    #: Instructions executed by the functional tier (not simulated in detail).
    ff_instructions: int
    #: Mark label -> cumulative fast-forward instruction count at retire.
    ff_marks: Dict[str, int]
    #: Detailed CPU cycles actually simulated (the clock freezes during
    #: fast-forward, so this is the final ``system.cycle``).
    detailed_cycles: int
    #: Instructions retired by the detailed tier.
    detailed_instructions: int
    cpu_ratio: int

    @property
    def cpi(self) -> Estimate:
        """Cycles per instruction over the measurement windows."""
        samples = [
            w.cycles / w.instructions for w in self.windows if w.instructions
        ]
        return _estimate(samples, self.config.confidence)

    @property
    def store_bandwidth(self) -> Estimate:
        """Useful store bytes per *bus* cycle, per measurement window.

        Windows with no uncached-store traffic (the kernel was in a compute
        phase) are excluded — this estimates the streaming-phase rate the
        paper's Figures 3/4 report, not a whole-program average.
        """
        samples = [
            w.store_bytes * self.cpu_ratio / w.cycles
            for w in self.windows
            if w.store_bytes and w.cycles
        ]
        return _estimate(samples, self.config.confidence)

    def estimate_span(
        self, raw_span: float, start_label: str, end_label: str
    ) -> float:
        """Reconstruct a mark-to-mark CPU-cycle span.

        ``raw_span`` is the detailed-tier span (mark cycles freeze during
        fast-forward, so it omits skipped work); the instructions
        fast-forwarded between the two marks are charged at the sampled
        CPI.  Falls back to the raw span when nothing was skipped between
        the marks or no window produced a CPI sample.
        """
        ff_between = self.ff_marks.get(end_label, 0) - self.ff_marks.get(
            start_label, 0
        )
        if ff_between <= 0:
            return float(raw_span)
        cpi = self.cpi
        if cpi.samples == 0:
            return float(raw_span)
        return raw_span + ff_between * cpi.mean

    def span_half_width(self, start_label: str, end_label: str) -> float:
        """Confidence half-width of :meth:`estimate_span`."""
        ff_between = self.ff_marks.get(end_label, 0) - self.ff_marks.get(
            start_label, 0
        )
        if ff_between <= 0:
            return 0.0
        return ff_between * self.cpi.half_width

    def to_dict(self) -> Dict[str, object]:
        import dataclasses

        return {
            "config": dataclasses.asdict(self.config),
            "windows": [w.to_dict() for w in self.windows],
            "ff_instructions": self.ff_instructions,
            "ff_marks": dict(sorted(self.ff_marks.items())),
            "detailed_cycles": self.detailed_cycles,
            "detailed_instructions": self.detailed_instructions,
            "cpi": self.cpi.to_dict(),
            "store_bandwidth": self.store_bandwidth.to_dict(),
        }


def _drain(system, max_cycles: int) -> None:
    """Step the detailed tier until the hand-off invariants hold.

    Re-requests the drain every cycle: a halt mid-drain installs the next
    runnable process (clearing the core's drain flag), and that fresh
    context must not dispatch either.
    """
    core = system.core
    quiescent = system._quiescent
    while not (core.drained and quiescent()):
        if system.cycle >= max_cycles:
            raise DeadlockError(
                f"pipeline drain exceeded max_cycles={max_cycles}",
                cycle=system.cycle,
            )
        core.request_drain()
        system.step()


def run_sampled(system, max_cycles: int = 5_000_000):
    """Run ``system`` to completion under the tiered execution engine.

    Returns the system's :class:`~repro.common.stats.StatsCollector` (like
    ``System.run``) and attaches a :class:`SamplingReport` as
    ``system.sampling_report``.  ``max_cycles`` bounds *detailed* cycles;
    fast-forwarded instructions do not advance the clock.
    """
    config = system.config.sampling
    if not config.enabled:
        raise ConfigError("run_sampled requires sampling.enabled")
    if system.devices:
        raise ConfigError("sampled execution does not support attached devices")
    ff = FastForwarder(system)
    retired = system.stats.counter("core.retired")
    store_window = system.stats.uncached_store_window
    stats_marks = system.stats.marks
    ff_marks = ff.ff_marks
    last_seen: Dict[str, int] = {}
    windows: List[WindowSample] = []

    def sync_marks(record: bool) -> None:
        # Marks retired by a *detailed* phase happened at the current
        # fast-forward offset; record that so estimate_span can tell which
        # portion of a span was skipped.  After a fast-forward phase the
        # interpreter has already recorded exact offsets, so only refresh
        # the change detector.
        for label, cycle in stats_marks.items():
            if last_seen.get(label) != cycle:
                last_seen[label] = cycle
                if record:
                    ff_marks[label] = ff.instructions_executed

    index = 0
    while not system.finished:
        if system.cycle >= max_cycles:
            raise DeadlockError(
                f"exceeded max_cycles={max_cycles}", cycle=system.cycle
            )
        system.run_window(config.warmup_cycles)
        sync_marks(True)
        if system.finished:
            break
        start_cycle = system.cycle
        instructions_before = retired.value
        bytes_before = store_window.total_bytes
        ran = system.run_window(config.window_cycles)
        sync_marks(True)
        windows.append(
            WindowSample(
                index,
                start_cycle,
                ran,
                retired.value - instructions_before,
                store_window.total_bytes - bytes_before,
            )
        )
        index += 1
        if system.finished:
            break
        _drain(system, max_cycles)
        sync_marks(True)
        if system.finished:
            break
        ff.fast_forward(config.ff_instructions)
        sync_marks(False)
    report = SamplingReport(
        config=config,
        windows=tuple(windows),
        ff_instructions=ff.instructions_executed,
        ff_marks=dict(ff_marks),
        detailed_cycles=system.cycle,
        detailed_instructions=retired.value,
        cpu_ratio=system.config.bus.cpu_ratio,
    )
    system.sampling_report = report
    return system.stats
