"""Round-robin process scheduler with drain-based context switches.

Context switches model a timer interrupt: dispatch stops, the pipeline
drains (in-flight instructions complete architecturally — this is an
interrupt, not a misprediction), a fixed switch penalty elapses (register
save/restore, kernel entry/exit), and the next runnable context is
installed.  Draining between contexts is what makes the CSB conflict story
observable: a process interrupted between its combining stores and its
conditional flush leaves its partial line in the CSB, and the *next*
process's first combining store clears it (paper §3.2's interleaving
example).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigError
from repro.cpu.context import ProcessContext
from repro.cpu.core import Core


class Scheduler:
    """Owns the run queue and drives the core's context."""

    def __init__(
        self,
        core: Core,
        quantum: Optional[int] = None,
        switch_penalty: int = 100,
    ) -> None:
        if quantum is not None and quantum < 1:
            raise ConfigError("quantum must be >= 1 cycle")
        if switch_penalty < 0:
            raise ConfigError("switch_penalty must be >= 0")
        self.core = core
        self.quantum = quantum
        self.switch_penalty = switch_penalty
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        self._processes: List[ProcessContext] = []
        self._current_index = -1
        self._quantum_start = 0
        self._switch_at: Optional[int] = None
        self._draining = False
        self.context_switches = 0

    def add(self, context: ProcessContext) -> None:
        self._processes.append(context)

    @property
    def processes(self) -> List[ProcessContext]:
        return list(self._processes)

    @property
    def all_halted(self) -> bool:
        # Hot: checked once per simulated CPU cycle by System.run.
        for process in self._processes:
            if not process.halted:
                return False
        return True

    def runnable(self) -> List[ProcessContext]:
        return [p for p in self._processes if not p.halted]

    def tick(self, now: int) -> None:
        if not self._processes:
            return
        # Waiting out the switch penalty?
        if self._switch_at is not None:
            if now >= self._switch_at:
                self._install_next(now)
            return
        current = self.core.context
        if current is None:
            self._begin_switch(now, immediate=True)
            return
        if current.halted:
            if self.runnable():
                self._begin_switch(now, immediate=True)
            return
        if self._draining:
            if self.core.drained:
                self._draining = False
                self._switch_at = now + self.switch_penalty
            return
        if (
            self.quantum is not None
            and len(self.runnable()) > 1
            and now - self._quantum_start >= self.quantum
        ):
            # Precise timer interrupt: unretired work is squashed and will
            # re-execute when this process is rescheduled.
            self.core.interrupt()
            self._draining = True

    def _begin_switch(self, now: int, immediate: bool) -> None:
        if immediate:
            self._install_next(now)
        else:
            self._switch_at = now + self.switch_penalty

    def _install_next(self, now: int) -> None:
        self._switch_at = None
        self._draining = False  # a halt during a drain ends the drain
        candidates = self.runnable()
        if not candidates:
            return
        # Round-robin: next index after the current one.
        for step in range(1, len(self._processes) + 1):
            index = (self._current_index + step) % len(self._processes)
            if not self._processes[index].halted:
                self._current_index = index
                break
        chosen = self._processes[self._current_index]
        if self.core.context is not chosen:
            self.core.install_context(chosen)
            self.context_switches += 1
            if self.events is not None:
                from repro.observability.events import ContextSwitch

                self.events.publish(ContextSwitch(chosen.pid, chosen.name))
        self._quantum_start = now
