"""Round-robin process scheduling with drain-based context switches.

Context switches model a timer interrupt: dispatch stops, the pipeline
drains (in-flight instructions complete architecturally — this is an
interrupt, not a misprediction), a fixed switch penalty elapses (register
save/restore, kernel entry/exit), and the next runnable context is
installed.  Draining between contexts is what makes the CSB conflict story
observable: a process interrupted between its combining stores and its
conditional flush leaves its partial line in the CSB, and the *next*
process's first combining store clears it (paper §3.2's interleaving
example).

Two layers:

* :class:`CoreScheduler` owns one core's run queue — the timeslice logic
  above, verbatim, for a single core.
* :class:`Scheduler` is the SMP multiplexer the :class:`~repro.sim.system
  .System` talks to: it distributes processes over per-core run queues
  (round-robin by add order unless the caller pins a ``core_id``) and
  ticks every queue each cycle.  With one core it degenerates to exactly
  the single-queue behavior, which keeps ``num_cores=1`` runs
  cycle-identical to the pre-SMP scheduler.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.common.errors import ConfigError
from repro.cpu.context import ProcessContext
from repro.cpu.core import Core


class CoreScheduler:
    """Owns one core's run queue and drives that core's context."""

    def __init__(
        self,
        core: Core,
        quantum: Optional[int] = None,
        switch_penalty: int = 100,
        core_id: int = 0,
    ) -> None:
        if quantum is not None and quantum < 1:
            raise ConfigError("quantum must be >= 1 cycle")
        if switch_penalty < 0:
            raise ConfigError("switch_penalty must be >= 0")
        self.core = core
        self.core_id = core_id
        self.quantum = quantum
        self.switch_penalty = switch_penalty
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        self._processes: List[ProcessContext] = []
        self._current_index = -1
        self._quantum_start = 0
        self._switch_at: Optional[int] = None
        self._draining = False
        self.context_switches = 0
        # Cached count of non-halted processes.  Only the installed context
        # can transition to halted (halt executes on the core), and tick()
        # observes that transition exactly once via _current_live, so the
        # count never drifts — and the hot path never allocates a list.
        self._num_runnable = 0
        self._current_live = False
        #: Schedule forcing (the model checker's replay driver): while
        #: held, tick() is a no-op and contexts are installed/parked
        #: explicitly via force_install()/force_park().  Never set during
        #: normal simulation, so the scheduler's timing is untouched.
        self.held = False

    def force_install(self, context: ProcessContext) -> None:
        """Install ``context`` directly, bypassing the run queue.

        Used by the deterministic replay driver to execute one abstract
        step at a time: the pipeline must be drained (the previous step
        program has fully retired) and the queue is held so the timeslice
        logic cannot interfere.
        """
        if not self.core.drained:
            raise ConfigError("force_install with instructions in flight")
        self.held = True
        self.core.install_context(context)

    def force_park(self) -> None:
        """Remove the forced context once its step program has halted."""
        if not self.core.drained:
            raise ConfigError("force_park with instructions in flight")
        self.core.context = None

    def add(self, context: ProcessContext) -> None:
        self._processes.append(context)
        if not context.halted:
            self._num_runnable += 1

    @property
    def processes(self) -> List[ProcessContext]:
        return list(self._processes)

    @property
    def all_halted(self) -> bool:
        # Hot: checked once per simulated CPU cycle by System.run.
        for process in self._processes:
            if not process.halted:
                return False
        return True

    def runnable(self) -> List[ProcessContext]:
        return [p for p in self._processes if not p.halted]

    def tick(self, now: int) -> None:
        if self.held or not self._processes:
            return
        # Hot path (once per simulated CPU cycle): one attribute load for
        # the core, and the common no-quantum case falls straight through.
        core = self.core
        # Waiting out the switch penalty?
        if self._switch_at is not None:
            if now >= self._switch_at:
                self._install_next(now)
            return
        current = core.context
        if current is None:
            self._begin_switch(now, immediate=True)
            return
        if current.halted:
            if self._current_live:
                self._current_live = False
                self._num_runnable -= 1
            if self._num_runnable:
                self._begin_switch(now, immediate=True)
            return
        if self._draining:
            if core.drained:
                self._draining = False
                self._switch_at = now + self.switch_penalty
            return
        if (
            self.quantum is not None
            and self._num_runnable > 1
            and now - self._quantum_start >= self.quantum
        ):
            # Precise timer interrupt: unretired work is squashed and will
            # re-execute when this process is rescheduled.
            core.interrupt()
            self._draining = True

    def retire_halted(self) -> int:
        """Forget every halted process (streaming replay's queue purge).

        A trace replay adds a fresh program per window; without retirement
        the run queues — and ``all_halted`` scans — would grow with every
        window.  Only fully finished contexts go: a halted context whose
        core has not drained stays until it has.  Returns the number
        retired.
        """
        keep: List[ProcessContext] = []
        retired = 0
        for process in self._processes:
            if process.halted and (
                self.core.context is not process or self.core.drained
            ):
                retired += 1
                if self.core.context is process:
                    self.core.context = None
            else:
                keep.append(process)
        if retired:
            self._processes = keep
            # Restart round-robin from the front; the replay installs at
            # most one program per core per window, so order is immaterial.
            self._current_index = -1
            self._current_live = False
        return retired

    def reinstall(self, context: ProcessContext) -> None:
        """Re-install ``context`` after a fast-forward hand-off.

        The fast-forward tier advances the *currently installed* context
        functionally (pipeline drained first), so the core's speculative
        fetch pointer is stale when detailed execution resumes.  Reinstalling
        refreshes it from ``context.pc`` without charging a context switch —
        architecturally no switch happened.
        """
        if context not in self._processes:
            raise ConfigError("cannot reinstall a context this queue does not own")
        self._switch_at = None
        self._draining = False
        self._current_index = self._processes.index(context)
        self.core.install_context(context)
        self._current_live = not context.halted
        self._quantum_start = self.core.now

    def _begin_switch(self, now: int, immediate: bool) -> None:
        if immediate:
            self._install_next(now)
        else:
            self._switch_at = now + self.switch_penalty

    def _install_next(self, now: int) -> None:
        self._switch_at = None
        self._draining = False  # a halt during a drain ends the drain
        candidates = self.runnable()
        if not candidates:
            return
        # Round-robin: next index after the current one.
        for step in range(1, len(self._processes) + 1):
            index = (self._current_index + step) % len(self._processes)
            if not self._processes[index].halted:
                self._current_index = index
                break
        chosen = self._processes[self._current_index]
        if self.core.context is not chosen:
            self.core.install_context(chosen)
            self.context_switches += 1
            if self.events is not None:
                from repro.observability.events import ContextSwitch

                self.events.publish(
                    ContextSwitch(chosen.pid, chosen.name, self.core_id)
                )
        self._current_live = True
        self._quantum_start = now


class Scheduler:
    """Multiplexes processes over per-core run queues.

    Accepts a single :class:`Core` (the historical signature) or a
    sequence of cores.  Processes are assigned to cores round-robin in
    add order; ``add(context, core_id=...)`` pins one explicitly.
    """

    def __init__(
        self,
        cores: Union[Core, Sequence[Core]],
        quantum: Optional[int] = None,
        switch_penalty: int = 100,
    ) -> None:
        core_list = [cores] if isinstance(cores, Core) else list(cores)
        if not core_list:
            raise ConfigError("scheduler needs at least one core")
        self.quantum = quantum
        self.switch_penalty = switch_penalty
        self.queues: List[CoreScheduler] = [
            CoreScheduler(core, quantum, switch_penalty, core_id=index)
            for index, core in enumerate(core_list)
        ]
        self._processes: List[ProcessContext] = []

    def add(self, context: ProcessContext, core_id: Optional[int] = None) -> None:
        if core_id is None:
            core_id = len(self._processes) % len(self.queues)
        if not 0 <= core_id < len(self.queues):
            raise ConfigError(
                f"core_id {core_id} out of range (have {len(self.queues)} cores)"
            )
        self._processes.append(context)
        self.queues[core_id].add(context)

    @property
    def processes(self) -> List[ProcessContext]:
        """All processes, in global add order."""
        return list(self._processes)

    @property
    def all_halted(self) -> bool:
        # Hot: checked once per simulated CPU cycle by System.run.
        for process in self._processes:
            if not process.halted:
                return False
        return True

    def runnable(self) -> List[ProcessContext]:
        return [p for p in self._processes if not p.halted]

    @property
    def context_switches(self) -> int:
        return sum(queue.context_switches for queue in self.queues)

    @property
    def events(self):
        return self.queues[0].events

    @events.setter
    def events(self, bus) -> None:
        for queue in self.queues:
            queue.events = bus

    def retire_halted(self) -> int:
        """Drop every fully finished process from all queues (see
        :meth:`CoreScheduler.retire_halted`)."""
        retired = sum(queue.retire_halted() for queue in self.queues)
        if retired:
            self._processes = [p for p in self._processes if not p.halted]
        return retired

    def tick(self, now: int) -> None:
        for queue in self.queues:
            queue.tick(now)
