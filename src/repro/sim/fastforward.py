"""Functional fast-forward tier: the ISA without the microarchitecture.

The detailed core is *functional-first* — every architectural result is
computed from :mod:`repro.isa.semantics` helpers at dispatch, and the
timing plane only decides *when* those results land.  That factoring is
what makes a fast-forward tier possible at all: this module executes the
same semantics helpers against the same backing store, register file, and
conditional store buffer, with the entire timing plane (ROB, functional
units, caches, bus, uncached buffer, per-cycle stats) deleted.

Programs are pre-decoded into per-instruction closures (``op(state) ->
next_pc``) with every decode-time constant — canonical register names,
resolved branch targets, partially-applied ALU callables from
:data:`repro.isa.semantics.ALU_OPS`, ``r0`` write guards — baked in, so
the inner loop is one dict-free closure call per instruction.  Decoded
programs are cached module-wide, keyed by
:meth:`repro.isa.program.Program.content_key`.

Hand-off discipline (the part correctness hangs on):

* **detailed -> fast-forward** only at a quiescent point: pipeline
  drained, uncached buffer empty, no CSB burst in flight.  The
  architectural state is then exactly {registers, pc, backing store, CSB
  line state, link register}, all of which transfer.
* **fast-forward -> detailed** re-installs the context (refreshing the
  core's speculative fetch pointer) and restores the link register, which
  ``install_context`` deliberately clears.

Because both tiers evaluate the *same* helper functions over the *same*
state, the final architectural state of a fast-forwarded run is identical
to a detailed run by construction — a property the differential tests
check over every registry workload and the randomized program generator.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.common.stats import StatsCollector
from repro.isa import semantics
from repro.isa.instructions import (
    AluInstruction,
    BLOCK_STORE_REGS,
    BlockStoreInstruction,
    BranchInstruction,
    CompareInstruction,
    FU_FP,
    HaltInstruction,
    LoadInstruction,
    LoadLinkedInstruction,
    MarkInstruction,
    MembarInstruction,
    NopInstruction,
    SetInstruction,
    StoreConditionalInstruction,
    StoreInstruction,
    SwapInstruction,
)
from repro.isa.program import Program
from repro.memory.layout import PageAttr
from repro.uncached.csb import ConditionalStoreBuffer, FlushResult

MASK64 = semantics.MASK64

#: Sentinel next-pc meaning "the program halted".
_HALT = -1

#: One decoded instruction: state -> next pc (or :data:`_HALT`).
FFOp = Callable[["FFState"], int]


class FFState:
    """Mutable interpreter state threaded through the decoded closures.

    Everything here is *architectural*: the live register mapping of the
    installed context, the system's backing store, the CSB mirror, the
    link register, and the mark bookkeeping.  Timing state (caches, TLB,
    buffers) has no representation — the TLB in particular is bypassed on
    purpose, because :meth:`repro.memory.tlb.AttributeTLB.attribute_of`
    mutates hit/miss counters the detailed tier owns.
    """

    __slots__ = (
        "regs",
        "backing",
        "space",
        "page_size",
        "attr_cache",
        "csb",
        "pid",
        "link",
        "line_size",
        "marks",
        "stats_mark",
        "mark_cycle",
        "ff_marks",
        "ff_total",
        "executed",
    )

    def __init__(self, system) -> None:
        self.backing = system.backing
        self.space = system.space
        self.page_size = system.space.page_size
        self.attr_cache: Dict[int, PageAttr] = {}
        # Private CSB mirror: same architectural model, throwaway stats
        # collector so fast-forwarded combining stores do not perturb the
        # detailed tier's csb.* counters.
        self.csb = ConditionalStoreBuffer(system.config.csb, StatsCollector())
        self.line_size = system.config.memory.line_size
        self.stats_mark = system.stats.mark
        self.mark_cycle = 0
        self.ff_marks: Dict[str, int] = {}
        self.ff_total = 0
        self.executed = 0
        self.regs: Dict[str, int] = {}
        self.marks: Dict[str, int] = {}
        self.pid = 0
        self.link: Optional[int] = None

    def bind_context(self, context) -> None:
        self.regs = context.registers.raw_values
        self.marks = context.marks
        self.pid = context.pid

    def attribute(self, address: int) -> PageAttr:
        """Page attribute with a private page cache (TLB-free)."""
        page = address // self.page_size
        attr = self.attr_cache.get(page)
        if attr is None:
            attr = self.space.attribute_of(address)
            self.attr_cache[page] = attr
        return attr


# -- decoding ------------------------------------------------------------------

_DECODE_CACHE: Dict[tuple, List[FFOp]] = {}
_DECODE_CACHE_LIMIT = 256


def decode_program(program: Program, line_size: int) -> List[FFOp]:
    """Pre-decoded closure list for ``program``, cached by content."""
    key = (program.content_key(), line_size)
    ops = _DECODE_CACHE.get(key)
    if ops is None:
        if len(_DECODE_CACHE) >= _DECODE_CACHE_LIMIT:
            _DECODE_CACHE.clear()
        ops = [
            _decode_one(instr, index, program, line_size)
            for index, instr in enumerate(program)
        ]
        _DECODE_CACHE[key] = ops
    return ops


def _address_fn(instr) -> Callable[[Dict[str, int]], int]:
    """Closure computing ``[base + offset]`` from the register mapping."""
    base = instr.base
    offset = instr.offset
    if isinstance(offset, str):

        def address_reg(regs, base=base, offset=offset):
            return (regs[base] + regs[offset]) & MASK64

        return address_reg

    def address_imm(regs, base=base, offset=offset):
        return (regs[base] + offset) & MASK64

    return address_imm


def _aligned(address: int, size: int, pc: int) -> None:
    if address % size:
        raise SimulationError(
            f"unaligned {size}-byte access at {address:#x} (pc={pc})"
        )


def _decode_one(instr, index: int, program: Program, line_size: int) -> FFOp:
    nxt = index + 1
    if isinstance(instr, SetInstruction):
        rd = instr.rd
        value = instr.value & MASK64
        if rd == "r0":
            return lambda state, nxt=nxt: nxt

        def ff_set(state, rd=rd, value=value, nxt=nxt):
            state.regs[rd] = value
            return nxt

        return ff_set

    if isinstance(instr, AluInstruction):
        fn = (
            semantics.FP_OPS[instr.op]
            if instr.fu == FU_FP
            else semantics.ALU_OPS[instr.op]
        )
        rd, rs1, op2 = instr.rd, instr.rs1, instr.operand2
        if rd == "r0":
            return lambda state, nxt=nxt: nxt
        if isinstance(op2, str):

            def ff_alu_rr(state, fn=fn, rd=rd, rs1=rs1, rs2=op2, nxt=nxt):
                regs = state.regs
                regs[rd] = fn(regs[rs1], regs[rs2])
                return nxt

            return ff_alu_rr

        def ff_alu_ri(state, fn=fn, rd=rd, rs1=rs1, imm=op2, nxt=nxt):
            regs = state.regs
            regs[rd] = fn(regs[rs1], imm)
            return nxt

        return ff_alu_ri

    if isinstance(instr, CompareInstruction):
        rs1, op2 = instr.rs1, instr.operand2
        compare = semantics.compare
        if isinstance(op2, str):

            def ff_cmp_rr(state, rs1=rs1, rs2=op2, nxt=nxt, compare=compare):
                regs = state.regs
                regs["icc"] = compare(regs[rs1], regs[rs2])
                return nxt

            return ff_cmp_rr

        def ff_cmp_ri(state, rs1=rs1, imm=op2, nxt=nxt, compare=compare):
            regs = state.regs
            regs["icc"] = compare(regs[rs1], imm)
            return nxt

        return ff_cmp_ri

    if isinstance(instr, BranchInstruction):
        target = program.target_of(instr)
        op = instr.op
        if op == "ba":
            return lambda state, target=target: target
        if op in ("brz", "brnz"):
            rs1 = instr.rs1
            want_zero = op == "brz"

            def ff_brreg(state, rs1=rs1, target=target, nxt=nxt, wz=want_zero):
                return target if (state.regs[rs1] == 0) == wz else nxt

            return ff_brreg
        taken_fn = semantics.branch_taken

        def ff_brcc(state, op=op, target=target, nxt=nxt, taken_fn=taken_fn):
            return target if taken_fn(op, cc=state.regs["icc"]) else nxt

        return ff_brcc

    if isinstance(instr, LoadLinkedInstruction):
        address_fn = _address_fn(instr)
        rd = instr.rd

        def ff_ll(state, address_fn=address_fn, rd=rd, nxt=nxt, pc=index):
            address = address_fn(state.regs)
            _aligned(address, 8, pc)
            if state.attribute(address) is not PageAttr.CACHED:
                raise SimulationError(
                    f"load-linked requires cached space, not {address:#x}"
                )
            value = state.backing.read_int(address, 8)
            if rd != "r0":
                state.regs[rd] = value
            state.link = address - (address % state.line_size)
            return nxt

        return ff_ll

    if isinstance(instr, StoreConditionalInstruction):
        address_fn = _address_fn(instr)
        rs, rd = instr.rs, instr.rd

        def ff_sc(state, address_fn=address_fn, rs=rs, rd=rd, nxt=nxt, pc=index):
            address = address_fn(state.regs)
            _aligned(address, 8, pc)
            if state.attribute(address) is not PageAttr.CACHED:
                raise SimulationError(
                    f"store-conditional requires cached space, not {address:#x}"
                )
            line = address - (address % state.line_size)
            if state.link == line:
                state.backing.write_int(address, state.regs[rs], 8)
                value = 1
            else:
                value = 0
            state.link = None
            if rd != "r0":
                state.regs[rd] = value
            return nxt

        return ff_sc

    if isinstance(instr, SwapInstruction):
        address_fn = _address_fn(instr)
        rd = instr.rd

        def ff_swap(state, address_fn=address_fn, rd=rd, nxt=nxt, pc=index):
            regs = state.regs
            address = address_fn(regs)
            _aligned(address, 8, pc)
            attr = state.attribute(address)
            expected = regs[rd]
            if attr is PageAttr.CACHED:
                backing = state.backing
                value = backing.read_int(address, 8)
                backing.write_int(address, expected, 8)
                link = state.link
                if link is not None and address - (address % state.line_size) == link:
                    state.link = None
            elif attr is PageAttr.UNCACHED_COMBINING:
                csb = state.csb
                if (
                    csb.conditional_flush(address, state.pid, expected)
                    is FlushResult.SUCCESS
                ):
                    burst = csb.pop_burst()
                    state.backing.write_bytes(burst.address, burst.data)
                    value = expected
                else:
                    value = 0
            else:
                backing = state.backing
                value = backing.read_int(address, 8)
                backing.write_int(address, expected, 8)
            if rd != "r0":
                regs[rd] = value
            return nxt

        return ff_swap

    if isinstance(instr, BlockStoreInstruction):
        address_fn = _address_fn(instr)
        size = instr.size

        def ff_blockstore(state, address_fn=address_fn, size=size, nxt=nxt, pc=index):
            regs = state.regs
            address = address_fn(regs)
            _aligned(address, size, pc)
            if state.attribute(address) is PageAttr.CACHED:
                raise SimulationError(
                    "block stores bypass the cache hierarchy; target "
                    f"uncached space, not {address:#x}"
                )
            packed = 0
            for reg in BLOCK_STORE_REGS:
                packed = (packed << 64) | regs[reg]
            state.backing.write_bytes(address, packed.to_bytes(size, "big"))
            return nxt

        return ff_blockstore

    if isinstance(instr, LoadInstruction):
        address_fn = _address_fn(instr)
        rd = instr.rd
        size = instr.size

        def ff_load(state, address_fn=address_fn, rd=rd, size=size, nxt=nxt, pc=index):
            address = address_fn(state.regs)
            _aligned(address, size, pc)
            state.attribute(address)  # unmapped-access fault parity
            value = state.backing.read_int(address, size)
            if rd != "r0":
                state.regs[rd] = value
            return nxt

        return ff_load

    if isinstance(instr, StoreInstruction):
        address_fn = _address_fn(instr)
        rs = instr.rs
        size = instr.size
        byte_mask = (1 << (8 * size)) - 1

        def ff_store(
            state,
            address_fn=address_fn,
            rs=rs,
            size=size,
            byte_mask=byte_mask,
            nxt=nxt,
            pc=index,
        ):
            regs = state.regs
            address = address_fn(regs)
            _aligned(address, size, pc)
            attr = state.attribute(address)
            value = regs[rs]
            if attr is PageAttr.UNCACHED_COMBINING:
                state.csb.store(
                    address, (value & byte_mask).to_bytes(size, "big"), state.pid
                )
            else:
                state.backing.write_int(address, value, size)
                if attr is PageAttr.CACHED:
                    link = state.link
                    if (
                        link is not None
                        and address - (address % state.line_size) == link
                    ):
                        state.link = None
            return nxt

        return ff_store

    if isinstance(instr, MarkInstruction):
        label = instr.label

        def ff_mark(state, label=label, nxt=nxt):
            state.marks[label] = state.mark_cycle
            state.stats_mark(label, state.mark_cycle)
            state.ff_marks[label] = state.ff_total + state.executed
            return nxt

        return ff_mark

    if isinstance(instr, HaltInstruction):
        return lambda state: _HALT

    if isinstance(instr, (MembarInstruction, NopInstruction)):
        # Both are pure timing: the fast-forward tier is always quiescent,
        # so a membar's ordering constraint holds trivially.
        return lambda state, nxt=nxt: nxt

    raise SimulationError(f"fast-forward cannot decode {instr!r}")


# -- the fast-forward engine ---------------------------------------------------


class FastForwarder:
    """Advances a system's installed context functionally.

    Usage (what the sampling controller does)::

        ff = FastForwarder(system)
        ...  # run detailed, then drain to a quiescent point
        executed = ff.fast_forward(100_000)
        ...  # resume detailed: warm up, measure, drain, repeat
    """

    def __init__(self, system) -> None:
        config = system.config
        if config.num_cores != 1:
            raise ConfigError("fast-forward supports single-core systems only")
        if config.quantum is not None:
            raise ConfigError("fast-forward is incompatible with preemptive quanta")
        if system.faults is not None:
            raise ConfigError("fast-forward is incompatible with fault injection")
        self.system = system
        self.state = FFState(system)

    @property
    def instructions_executed(self) -> int:
        """Total instructions executed functionally, over all hand-offs."""
        return self.state.ff_total

    @property
    def ff_marks(self) -> Dict[str, int]:
        """Label -> cumulative fast-forward instruction count at retire."""
        return self.state.ff_marks

    def fast_forward(self, budget: int) -> int:
        """Execute up to ``budget`` instructions functionally.

        The system must be at a quiescent point (pipeline drained, all
        I/O complete); on return the detailed tier can resume seamlessly.
        Returns the number of instructions executed — 0 when there is no
        live context to advance (nothing installed yet, or halted).
        """
        if budget < 1:
            raise ConfigError("fast-forward budget must be >= 1 instruction")
        system = self.system
        if system.devices:
            raise ConfigError("fast-forward cannot model attached devices")
        core = system.core
        context = core.context
        if context is None or context.halted:
            return 0
        if not core.drained:
            raise SimulationError("fast-forward hand-off with pipeline in flight")
        if not system._quiescent():
            raise SimulationError("fast-forward hand-off with I/O in flight")
        state = self.state
        state.bind_context(context)
        state.link = core.link_address
        state.mark_cycle = system.cycle
        state.csb.import_state(system.csb.export_state())
        ops = decode_program(context.program, state.line_size)
        executed = 0
        state.executed = 0
        pc = context.pc
        while executed < budget:
            next_pc = ops[pc](state)
            executed += 1
            state.executed = executed
            if next_pc < 0:
                # The detailed core's commit leaves pc just past the halt.
                context.halted = True
                pc += 1
                break
            pc = next_pc
        context.pc = pc
        context.retired_instructions += executed
        state.ff_total += executed
        system.csb.import_state(state.csb.export_state())
        if not context.halted:
            system.scheduler.queues[0].reinstall(context)
            core.link_address = state.link
        return executed
