"""The simulated system: one core, a two-level cache hierarchy, the
uncached unit (conventional buffer + CSB), a system bus, main memory, and
any number of memory-mapped devices — all advanced by a single CPU clock,
with the bus ticking once every ``cpu_ratio`` CPU cycles.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError, DeadlockError
from repro.common.stats import StatsCollector
from repro.bus.base import TargetRegistry
from repro.bus.factory import make_bus
from repro.cpu.context import ProcessContext
from repro.cpu.core import Core
from repro.cpu.trace import PipelineTrace
from repro.devices.base import Device
from repro.isa.program import Program
from repro.memory.backing import BackingStore
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.layout import AddressSpace, default_address_space
from repro.memory.tlb import AttributeTLB
from repro.observability.hooks import EventBus, Observability
from repro.observability.sinks import EventSink
from repro.sim.scheduler import Scheduler
from repro.uncached.buffer import UncachedBuffer
from repro.uncached.csb import ConditionalStoreBuffer
from repro.uncached.unit import UncachedUnit

class System:
    """A complete simulated machine.

    Typical use::

        system = System(SystemConfig())
        system.add_process(assemble(KERNEL_SOURCE)).set_register("o1", DST)
        stats = system.run()
        print(stats.uncached_store_window.bytes_per_cycle)
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        space: Optional[AddressSpace] = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.stats = StatsCollector()
        self.backing = BackingStore()
        self.space = space or default_address_space()
        self.tlb = AttributeTLB(self.space)
        self.targets = TargetRegistry(self.backing)
        self.bus = make_bus(
            self.config.bus, self.stats, self.targets, self.config.bus_read_latency
        )
        self.csb = ConditionalStoreBuffer(self.config.csb, self.stats)
        self.buffer = UncachedBuffer(self.config.uncached, self.bus, self.stats)
        self.unit = UncachedUnit(
            self.buffer,
            self.csb,
            self.bus,
            self.tlb,
            self.stats,
            self.config.bus.cpu_ratio,
            self.config.csb,
        )
        self.hierarchy = MemoryHierarchy(self.config.memory, self.backing)
        self.refill_engine = None
        if self.config.memory.refills_use_bus:
            from repro.memory.refill import RefillEngine

            self.refill_engine = RefillEngine(
                self.bus, self.config.memory.line_size, self.stats
            )
            self.hierarchy.refill_hook = self.refill_engine.request
            self.unit.refill_engine = self.refill_engine
        self.trace = PipelineTrace() if self.config.trace else None
        self.core = Core(
            self.config.core,
            self.hierarchy,
            self.tlb,
            self.unit,
            self.stats,
            trace=self.trace,
        )
        self.scheduler = Scheduler(
            self.core, self.config.quantum, self.config.switch_penalty
        )
        self.devices: List[Device] = []
        self.observability = Observability(self)
        self.cycle = 0
        self._next_pid = 1

    # -- construction -----------------------------------------------------------

    def add_process(
        self, program: Program, pid: Optional[int] = None, name: str = ""
    ) -> ProcessContext:
        """Create a process running ``program`` and add it to the run queue."""
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
        context = ProcessContext(pid, program, name)
        self.scheduler.add(context)
        return context

    def attach_device(self, device: Device) -> Device:
        """Register a device: its region must lie within uncached space."""
        region = device.region
        covering = self.space.region_at(region.base)
        if covering is None or region.end > covering.end:
            raise ConfigError(
                f"device {device.name!r} region not inside a mapped region"
            )
        if not covering.attr.is_uncached:
            raise ConfigError(f"device {device.name!r} must live in uncached space")
        self.targets.register(region, device)
        self.devices.append(device)
        self.observability.wire_device(device)
        return device

    def attach_observer(self, sink: EventSink) -> EventSink:
        """Subscribe an event sink, enabling observability on first use.

        Returns ``sink`` so attachment reads naturally::

            ring = system.attach_observer(RingBufferSink())
        """
        self.observability.attach(sink)
        return sink

    @property
    def events(self) -> Optional[EventBus]:
        """The installed event bus (None while observability is off)."""
        return self.observability.bus

    # -- clocking ---------------------------------------------------------------

    def step(self) -> None:
        """Advance one CPU cycle."""
        now = self.cycle
        self.unit.tick(now)
        if self.devices and now % self.config.bus.cpu_ratio == 0:
            bus_cycle = now // self.config.bus.cpu_ratio
            for device in self.devices:
                device.tick(bus_cycle)
        self.core.tick(now)
        self.scheduler.tick(now)
        self.cycle += 1

    def run(self, max_cycles: int = 5_000_000) -> StatsCollector:
        """Run until every process has halted and all I/O has drained.

        This is the simulator's hottest loop (every experiment point runs
        through it), so the per-cycle component ticks are bound to locals
        and device ticking is skipped entirely when nothing is attached —
        cycle-for-cycle identical to calling :meth:`step` in a loop.
        """
        unit_tick = self.unit.tick
        core_tick = self.core.tick
        scheduler = self.scheduler
        scheduler_tick = scheduler.tick
        quiescent = self.unit.quiescent
        devices = self.devices
        ratio = self.config.bus.cpu_ratio
        cycle = self.cycle
        try:
            while not (scheduler.all_halted and quiescent()):
                if cycle >= max_cycles:
                    raise DeadlockError(
                        f"exceeded max_cycles={max_cycles}", cycle=cycle
                    )
                unit_tick(cycle)
                if devices and cycle % ratio == 0:
                    bus_cycle = cycle // ratio
                    for device in devices:
                        device.tick(bus_cycle)
                core_tick(cycle)
                scheduler_tick(cycle)
                cycle += 1
        finally:
            self.cycle = cycle
        return self.stats

    def run_cycles(self, count: int) -> None:
        """Advance exactly ``count`` CPU cycles (for incremental tests)."""
        for _ in range(count):
            self.step()

    @property
    def finished(self) -> bool:
        return self.scheduler.all_halted and self.unit.quiescent()

    # -- measurement shortcuts -----------------------------------------------------

    @property
    def store_bandwidth(self) -> float:
        """Bytes per bus cycle over the uncached-store window (the paper's
        Figure 3/4 metric)."""
        return self.stats.uncached_store_window.bytes_per_cycle

    def span(self, start_label: str, end_label: str) -> int:
        """CPU cycles between two ``mark`` instructions (Figure 5 metric)."""
        return self.stats.span(start_label, end_label)

    def metrics(self, **extra):
        """A :class:`~repro.observability.metrics.MetricsSnapshot` of the
        run so far (normally taken after :meth:`run`)."""
        from repro.observability.metrics import MetricsSnapshot

        return MetricsSnapshot.from_system(self, **extra)
