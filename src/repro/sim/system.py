"""The simulated system: N cores (``SystemConfig.num_cores``, default 1),
each with its own uncached buffer + uncached unit, sharing one conditional
store buffer, one arbitrated system bus, a two-level cache hierarchy, main
memory, and any number of memory-mapped devices — all advanced by a single
CPU clock, with the bus ticking once every ``cpu_ratio`` CPU cycles.

Per-cycle clocking order (``step``): every uncached unit's CPU-side tick,
then — on a bus-cycle boundary — one :class:`~repro.bus.arbiter.BusArbiter`
grant (which also advances the bus and completes transactions) and the
device ticks, then every core, then the scheduler.  With ``num_cores=1``
this is exactly the pre-SMP ordering, so single-core runs are
cycle-identical to the historical single-initiator system.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError, DeadlockError
from repro.common.stats import StatsCollector
from repro.bus.arbiter import BusArbiter
from repro.bus.base import TargetRegistry
from repro.bus.factory import make_bus
from repro.cpu.context import ProcessContext
from repro.cpu.core import Core
from repro.cpu.trace import PipelineTrace
from repro.devices.base import Device
from repro.isa.program import Program
from repro.memory.backing import BackingStore
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.layout import AddressSpace, default_address_space
from repro.memory.tlb import AttributeTLB
from repro.observability.hooks import EventBus, Observability
from repro.observability.sinks import EventSink
from repro.sim.scheduler import Scheduler
from repro.uncached.buffer import UncachedBuffer
from repro.uncached.csb import ConditionalStoreBuffer
from repro.uncached.unit import UncachedUnit

class System:
    """A complete simulated machine.

    Typical use::

        system = System(SystemConfig())
        system.add_process(assemble(KERNEL_SOURCE)).set_register("o1", DST)
        stats = system.run()
        print(stats.uncached_store_window.bytes_per_cycle)
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        space: Optional[AddressSpace] = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.stats = StatsCollector()
        self.backing = BackingStore()
        self.space = space or default_address_space()
        self.tlb = AttributeTLB(self.space)
        self.targets = TargetRegistry(self.backing)
        self.bus = make_bus(
            self.config.bus, self.stats, self.targets, self.config.bus_read_latency
        )
        self.csb = ConditionalStoreBuffer(self.config.csb, self.stats)
        num_cores = self.config.num_cores
        self.buffers: List[UncachedBuffer] = [
            UncachedBuffer(self.config.uncached, self.bus, self.stats, core_id=i)
            for i in range(num_cores)
        ]
        self.units: List[UncachedUnit] = [
            UncachedUnit(
                self.buffers[i],
                self.csb,
                self.bus,
                self.tlb,
                self.stats,
                self.config.bus.cpu_ratio,
                self.config.csb,
                core_id=i,
            )
            for i in range(num_cores)
        ]
        self.hierarchy = MemoryHierarchy(self.config.memory, self.backing)
        self.refill_engine = None
        if self.config.memory.refills_use_bus:
            from repro.memory.refill import RefillEngine

            self.refill_engine = RefillEngine(
                self.bus, self.config.memory.line_size, self.stats
            )
            self.hierarchy.refill_hook = self.refill_engine.request
        # The non-blocking D-cache (MemoryConfig): one per core, sharing
        # one refill engine (arbiter class 0) and one write-back engine
        # (class 2) when cache traffic occupies the bus.  Disabled — the
        # default — the list is empty and every cached access takes the
        # historical blocking-hierarchy path, byte-identically.
        self.dcaches: List = []
        self.writeback_engine = None
        if self.config.mem.enabled:
            from repro.memory.dcache import DataCache, wire_peers

            self.dcaches = [
                DataCache(self.config.mem, name=f"dcache{i}")
                for i in range(num_cores)
            ]
            wire_peers(self.dcaches)
            if self.config.mem.bus_traffic:
                from repro.memory.refill import RefillEngine, WritebackEngine

                if self.refill_engine is None:
                    self.refill_engine = RefillEngine(
                        self.bus, self.config.mem.line_size, self.stats
                    )
                self.writeback_engine = WritebackEngine(
                    self.bus, self.config.mem.line_size, self.stats, self.backing
                )
                for dcache in self.dcaches:
                    dcache.refill_hook = self.refill_engine.request
                    dcache.writeback_hook = self.writeback_engine.request
            for unit in self.units:
                unit.csb_invalidate = self._csb_invalidate
        self.arbiter = BusArbiter(self.bus, self.config.arbitration)
        if self.refill_engine is not None:
            # Memory traffic stalls whole cores, so refills outrank
            # programmed I/O — the same choice the pre-SMP path hard-coded.
            self.arbiter.add_initiator(self.refill_engine, priority=0, name="refill")
        for i, unit in enumerate(self.units):
            self.arbiter.add_initiator(unit, priority=1, name=f"core{i}")
        if self.writeback_engine is not None:
            # Write-backs are never on a core's critical path (the victim's
            # bytes were snapshotted at eviction), so they yield to both
            # refills and programmed I/O.
            self.arbiter.add_initiator(
                self.writeback_engine, priority=2, name="writeback"
            )
        self.trace = PipelineTrace() if self.config.trace else None
        self.cores: List[Core] = [
            Core(
                self.config.core,
                self.hierarchy,
                self.tlb,
                self.units[i],
                self.stats,
                trace=self.trace,
                core_id=i,
                dcache=self.dcaches[i] if self.dcaches else None,
            )
            for i in range(num_cores)
        ]
        # Single-core aliases: core 0's hardware, the whole machine when
        # ``num_cores=1`` (which the historical API and tests rely on).
        self.buffer = self.buffers[0]
        self.unit = self.units[0]
        self.core = self.cores[0]
        self.scheduler = Scheduler(
            self.cores, self.config.quantum, self.config.switch_penalty
        )
        self.devices: List[Device] = []
        # Fault injection (repro.faults): a plan exists only when at least
        # one rate is nonzero, so fault-free runs keep every hook on its
        # ``faults is None`` fast path and stay byte-identical to a build
        # without the subsystem.
        self.faults = None
        if self.config.faults.enabled:
            from repro.faults.plan import FaultPlan

            self.faults = FaultPlan(self.config.faults)
            self.bus.faults = self.faults
            self.csb.faults = self.faults
            if self.refill_engine is not None:
                self.refill_engine.faults = self.faults
        self.observability = Observability(self)
        self.cycle = 0
        self._next_pid = 1
        # Tiered execution: the prebound one-cycle stepper (built lazily by
        # run_window) and the sampling controller's report, attached by
        # repro.sim.sampling.run_sampled after a sampled run.
        self._stepper = None
        self.sampling_report = None

    # -- construction -----------------------------------------------------------

    def add_process(
        self,
        program: Program,
        pid: Optional[int] = None,
        name: str = "",
        core_id: Optional[int] = None,
    ) -> ProcessContext:
        """Create a process running ``program`` and add it to a run queue.

        Without an explicit ``core_id`` processes are distributed over the
        cores round-robin in add order (all on core 0 for ``num_cores=1``).
        """
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
        context = ProcessContext(pid, program, name)
        self.scheduler.add(context, core_id=core_id)
        return context

    def attach_device(self, device: Device) -> Device:
        """Register a device: its region must lie within uncached space."""
        region = device.region
        covering = self.space.region_at(region.base)
        if covering is None or region.end > covering.end:
            raise ConfigError(
                f"device {device.name!r} region not inside a mapped region"
            )
        if not covering.attr.is_uncached:
            raise ConfigError(f"device {device.name!r} must live in uncached space")
        self.targets.register(region, device)
        self.devices.append(device)
        device.faults = self.faults
        self.observability.wire_device(device)
        return device

    def attach_observer(self, sink: EventSink) -> EventSink:
        """Subscribe an event sink, enabling observability on first use.

        Returns ``sink`` so attachment reads naturally::

            ring = system.attach_observer(RingBufferSink())
        """
        self.observability.attach(sink)
        return sink

    @property
    def events(self) -> Optional[EventBus]:
        """The installed event bus (None while observability is off)."""
        return self.observability.bus

    # -- clocking ---------------------------------------------------------------

    def step(self) -> None:
        """Advance one CPU cycle."""
        now = self.cycle
        for unit in self.units:
            unit.tick_cpu(now)
        if now % self.config.bus.cpu_ratio == 0:
            bus_cycle = now // self.config.bus.cpu_ratio
            self.arbiter.tick_bus(bus_cycle)
            for device in self.devices:
                device.tick(bus_cycle)
        for core in self.cores:
            core.tick(now)
        self.scheduler.tick(now)
        self.cycle += 1

    def run(self, max_cycles: int = 5_000_000) -> StatsCollector:
        """Run until every process has halted and all I/O has drained.

        This is the simulator's hottest loop (every experiment point runs
        through it), so the per-cycle component ticks are bound to locals
        and device ticking is skipped entirely when nothing is attached —
        cycle-for-cycle identical to calling :meth:`step` in a loop.  The
        single-core system keeps dedicated scalar bindings (no per-cycle
        list walks); the SMP loop iterates prebound tick lists.
        """
        scheduler = self.scheduler
        arbiter_tick = self.arbiter.tick_bus
        devices = self.devices
        ratio = self.config.bus.cpu_ratio
        cycle = self.cycle
        if len(self.cores) == 1:
            unit_tick = self.unit.tick_cpu
            core_tick = self.core.tick
            scheduler_tick = scheduler.queues[0].tick
            # With cache bus traffic the refill/write-back engines may hold
            # queued transactions after the core halts; the D-cache-enabled
            # system drains them through the full quiescence check.
            quiescent = self._quiescent if self.dcaches else self.unit.quiescent
            try:
                while not (scheduler.all_halted and quiescent()):
                    if cycle >= max_cycles:
                        raise DeadlockError(
                            f"exceeded max_cycles={max_cycles}", cycle=cycle
                        )
                    unit_tick(cycle)
                    if cycle % ratio == 0:
                        arbiter_tick(cycle // ratio)
                        if devices:
                            bus_cycle = cycle // ratio
                            for device in devices:
                                device.tick(bus_cycle)
                    core_tick(cycle)
                    scheduler_tick(cycle)
                    cycle += 1
            finally:
                self.cycle = cycle
            return self.stats
        unit_ticks = [unit.tick_cpu for unit in self.units]
        core_ticks = [core.tick for core in self.cores]
        scheduler_tick = scheduler.tick
        quiescent = self._quiescent
        try:
            while not (scheduler.all_halted and quiescent()):
                if cycle >= max_cycles:
                    raise DeadlockError(
                        f"exceeded max_cycles={max_cycles}", cycle=cycle
                    )
                for tick in unit_ticks:
                    tick(cycle)
                if cycle % ratio == 0:
                    bus_cycle = cycle // ratio
                    arbiter_tick(bus_cycle)
                    for device in devices:
                        device.tick(bus_cycle)
                for tick in core_ticks:
                    tick(cycle)
                scheduler_tick(cycle)
                cycle += 1
        finally:
            self.cycle = cycle
        return self.stats

    def run_cycles(self, count: int) -> None:
        """Advance exactly ``count`` CPU cycles (for incremental tests)."""
        for _ in range(count):
            self.step()

    def make_stepper(self):
        """Build a zero-argument closure advancing one CPU cycle.

        Cycle-for-cycle identical to :meth:`step`, but every component tick
        is bound once instead of being re-resolved through attribute chains
        each cycle — the same hoisting :meth:`run` does, packaged for
        callers that interleave their own logic with the clock (the
        sampling controller, :class:`~repro.sim.cluster.Cluster`).  The
        device list is captured by reference, so devices attached later are
        still ticked.
        """
        arbiter_tick = self.arbiter.tick_bus
        devices = self.devices
        ratio = self.config.bus.cpu_ratio
        if len(self.cores) == 1:
            unit_tick = self.unit.tick_cpu
            core_tick = self.core.tick
            scheduler_tick = self.scheduler.queues[0].tick

            def step_scalar() -> None:
                cycle = self.cycle
                unit_tick(cycle)
                if cycle % ratio == 0:
                    bus_cycle = cycle // ratio
                    arbiter_tick(bus_cycle)
                    if devices:
                        for device in devices:
                            device.tick(bus_cycle)
                core_tick(cycle)
                scheduler_tick(cycle)
                self.cycle = cycle + 1

            return step_scalar
        unit_ticks = [unit.tick_cpu for unit in self.units]
        core_ticks = [core.tick for core in self.cores]
        scheduler_tick = self.scheduler.tick

        def step_smp() -> None:
            cycle = self.cycle
            for tick in unit_ticks:
                tick(cycle)
            if cycle % ratio == 0:
                bus_cycle = cycle // ratio
                arbiter_tick(bus_cycle)
                for device in devices:
                    device.tick(bus_cycle)
            for tick in core_ticks:
                tick(cycle)
            scheduler_tick(cycle)
            self.cycle = cycle + 1

        return step_smp

    def run_window(self, cycles: int) -> int:
        """Advance up to ``cycles`` CPU cycles, stopping early when finished.

        Returns the number of cycles actually run.  This is the detailed
        tier's entry point for the sampling controller: unlike :meth:`run`
        it stops at a fixed horizon so measurement windows have exact,
        config-determined extents.
        """
        stepper = self._stepper
        if stepper is None:
            stepper = self._stepper = self.make_stepper()
        scheduler = self.scheduler
        quiescent = self._quiescent
        ran = 0
        while ran < cycles:
            if scheduler.all_halted and quiescent():
                break
            stepper()
            ran += 1
        return ran

    def run_streamed(self, feed, max_cycles: int = 5_000_000) -> StatsCollector:
        """Run with a feed that injects work whenever the machine drains.

        ``feed(system)`` is called whenever all processes have halted and
        the I/O paths are quiescent — including before the first cycle
        when the machine starts empty.  It returns True after installing more work
        (via :meth:`add_process`) or False when the stream is exhausted —
        at which point the run ends with the machine drained.  This is the
        trace-replay loop: the feed compiles the next window of trace
        records into programs, retiring the previous window's contexts and
        condensing its transaction records first so memory stays bounded
        no matter how long the stream is.

        ``max_cycles`` bounds the *whole* run, like :meth:`run`.
        """
        stepper = self._stepper
        if stepper is None:
            stepper = self._stepper = self.make_stepper()
        scheduler = self.scheduler
        quiescent = self._quiescent
        while True:
            if scheduler.all_halted and quiescent():
                if not feed(self):
                    return self.stats
                if scheduler.all_halted:
                    raise DeadlockError(
                        "stream feed returned True without adding work",
                        cycle=self.cycle,
                    )
            if self.cycle >= max_cycles:
                raise DeadlockError(
                    f"exceeded max_cycles={max_cycles}", cycle=self.cycle
                )
            stepper()

    def _quiescent(self) -> bool:
        """Every uncached unit drained (shared-bus drain checked by each),
        and — when the D-cache occupies the bus — its engines drained too."""
        for unit in self.units:
            if not unit.quiescent():
                return False
        if self.dcaches:
            # Outstanding refills must land (installing their lines and
            # generating any dirty-victim write-backs) before the machine
            # is done; the units tick first each cycle, so unit 0's clock
            # is the current CPU cycle.
            now = self.units[0]._now
            for dcache in self.dcaches:
                dcache.drain(now)
                if not dcache.quiescent():
                    return False
            if self.writeback_engine is not None and self.writeback_engine.pending:
                return False
            if self.refill_engine is not None and self.refill_engine.pending:
                return False
        return True

    def _csb_invalidate(self, address: int, size: int) -> None:
        """Invalidate-on-CSB-write: a committed CSB burst drops every
        covered line from every core's D-cache."""
        for dcache in self.dcaches:
            dcache.invalidate_span(address, size)

    def warm(self, address: int) -> None:
        """Install a line everywhere it could hit: the blocking hierarchy
        and — when enabled — every core's D-cache (e.g. a warm lock)."""
        self.hierarchy.warm(address)
        for dcache in self.dcaches:
            dcache.warm(address)

    @property
    def finished(self) -> bool:
        return self.scheduler.all_halted and self._quiescent()

    # -- measurement shortcuts -----------------------------------------------------

    @property
    def store_bandwidth(self) -> float:
        """Bytes per bus cycle over the uncached-store window (the paper's
        Figure 3/4 metric)."""
        return self.stats.uncached_store_window.bytes_per_cycle

    def span(self, start_label: str, end_label: str) -> int:
        """CPU cycles between two ``mark`` instructions (Figure 5 metric)."""
        return self.stats.span(start_label, end_label)

    def metrics(self, **extra):
        """A :class:`~repro.observability.metrics.MetricsSnapshot` of the
        run so far (normally taken after :meth:`run`)."""
        from repro.observability.metrics import MetricsSnapshot

        return MetricsSnapshot.from_system(self, **extra)
