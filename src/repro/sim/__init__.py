"""System assembly: wires core, caches, uncached unit, bus, memory, and
devices to a single clock, plus the process scheduler and run loop."""

from repro.sim.scheduler import Scheduler
from repro.sim.system import System

__all__ = ["Scheduler", "System"]
