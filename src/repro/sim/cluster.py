"""Multi-node co-simulation: several systems sharing a wall clock.

The paper's motivation is fine-grain communication between cluster nodes;
:class:`Cluster` steps any number of :class:`~repro.sim.system.System`
instances in CPU-cycle lockstep and ticks the links between their NICs on
bus-cycle boundaries.  All nodes must share one CPU/bus frequency ratio —
the cluster has a single wall clock.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigError, DeadlockError
from repro.devices.link import Link
from repro.sim.system import System


class Cluster:
    """A set of systems plus the links between them."""

    def __init__(self, systems: List[System]) -> None:
        if len(systems) < 2:
            raise ConfigError("a cluster needs at least two systems")
        ratios = {system.config.bus.cpu_ratio for system in systems}
        if len(ratios) != 1:
            raise ConfigError(
                f"all nodes must share one CPU/bus ratio, got {sorted(ratios)}"
            )
        self.systems = list(systems)
        self.links: List[Link] = []
        self.cycle = 0
        self._ratio = ratios.pop()

    def connect(self, link: Link) -> Link:
        self.links.append(link)
        return link

    def step(self) -> None:
        """Advance every node one CPU cycle; links tick on bus cycles."""
        if self.cycle % self._ratio == 0:
            bus_cycle = self.cycle // self._ratio
            for link in self.links:
                link.tick(bus_cycle)
        for system in self.systems:
            system.step()
        self.cycle += 1

    @property
    def finished(self) -> bool:
        return all(system.finished for system in self.systems) and all(
            link.in_flight == 0 for link in self.links
        )

    def run(self, max_cycles: int = 10_000_000) -> None:
        """Run every node to completion (halted and drained, links empty).

        Batched analogue of calling :meth:`step` in a loop — each node's
        per-cycle component ticks are prebound once through
        :meth:`System.make_stepper` (rather than re-resolved through
        ``System.step``'s attribute chains every cycle), link ticks are
        bound to locals, and the finish check walks explicit early-exit
        loops instead of building two generator expressions per cycle.
        Remains cycle-for-cycle identical to the unbatched loop
        (tests/sim/test_cluster_batch.py pins the equivalence).
        """
        steps = [system.make_stepper() for system in self.systems]
        link_ticks = [link.tick for link in self.links]
        systems = self.systems
        links = self.links
        ratio = self._ratio
        cycle = self.cycle
        try:
            while True:
                finished = True
                for system in systems:
                    if not system.finished:
                        finished = False
                        break
                if finished:
                    for link in links:
                        if link.in_flight:
                            finished = False
                            break
                if finished:
                    break
                if cycle >= max_cycles:
                    raise DeadlockError(
                        f"cluster exceeded max_cycles={max_cycles}", cycle=cycle
                    )
                if cycle % ratio == 0:
                    bus_cycle = cycle // ratio
                    for tick in link_ticks:
                        tick(bus_cycle)
                for step in steps:
                    step()
                cycle += 1
        finally:
            self.cycle = cycle
