"""The stable public facade: one import, three entry points.

Everything else in the package is implementation that may move between
releases; this module is the supported surface:

* :func:`simulate` — run one kernel on one configuration and get a
  :class:`RunResult` (stats, metrics, the finished system).
* :func:`experiments` — the ids of every figure/table the harness can
  regenerate.
* :func:`run_experiment` — regenerate one of them as a
  :class:`~repro.common.tables.Table`.

Example::

    from repro import simulate, SystemConfig
    from repro.workloads import store_kernel_csb

    result = simulate(SystemConfig(), store_kernel_csb(256, line_size=64))
    print(result.store_bandwidth, result.metrics.counters["csb.flushes"])

Both entry points take **one** configuration argument: a full
:class:`~repro.common.config.SystemConfig`, or a plain mapping of
per-section overrides merged over the defaults::

    result = simulate({"mem": {"enabled": True, "mshrs": 8}}, kernel)
    table = run_experiment("crossover", {"bus": {"cpu_ratio": 4}})

Observability plugs in through ``observers``::

    from repro.observability import RingBufferSink

    ring = RingBufferSink()
    result = simulate(config, kernel, observers=[ring])
    print(ring.counts())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.serialize import apply_overrides
from repro.common.stats import StatsCollector
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.observability.metrics import MetricsSnapshot
from repro.observability.sinks import EventSink
from repro.sim.system import System

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.tables import Table
    from repro.evaluation.runner import SweepRunner

#: What the unified entry points accept as "the configuration": a full
#: SystemConfig, a mapping of per-section overrides, or None (defaults).
ConfigLike = Union[SystemConfig, Mapping, None]


def resolve_config(config: ConfigLike) -> SystemConfig:
    """Normalize a :data:`ConfigLike` into a validated SystemConfig.

    A mapping is treated as partial overrides merged over the defaults
    (section -> {field: value}, exactly the shape
    :func:`~repro.common.serialize.config_to_dict` emits).
    """
    if config is None:
        return SystemConfig()
    if isinstance(config, SystemConfig):
        return config
    if isinstance(config, Mapping):
        return apply_overrides(SystemConfig(), config)
    raise ConfigError(
        f"expected a SystemConfig, an overrides mapping, or None; "
        f"got {type(config).__name__}"
    )


@dataclass(frozen=True)
class RunResult:
    """What :func:`simulate` hands back for one finished run."""

    system: System
    stats: StatsCollector
    metrics: MetricsSnapshot
    #: The sampled-execution report, or None for a fully detailed run.
    sampling: "Optional[object]" = None
    #: Human-readable reason the run fell back from sampled to detailed
    #: execution (None when no fallback happened).  Sweeps record the
    #: same information in ``SweepRunner.sampling_fallbacks``.
    sampling_fallback: Optional[str] = None

    @property
    def store_bandwidth(self) -> float:
        """Bytes per bus cycle over the uncached-store window (the
        paper's Figure 3/4 metric)."""
        return self.system.store_bandwidth

    def span(self, start_label: str, end_label: str) -> float:
        """CPU cycles between two ``mark`` instructions (Figure 5).

        For a sampled run the span is reconstructed (skipped instructions
        charged at the sampled CPI) and may be fractional.
        """
        raw = self.system.span(start_label, end_label)
        if self.sampling is not None:
            return self.sampling.estimate_span(raw, start_label, end_label)
        return raw


def simulate(
    config: ConfigLike = None,
    program: "Program | str | None" = None,
    *,
    programs: Sequence["Program | str"] = (),
    observers: Iterable[EventSink] = (),
    warm: Tuple[int, ...] = (),
    max_cycles: int = 5_000_000,
) -> RunResult:
    """Build a system, run kernel(s) to completion, return the result.

    ``config`` is a :class:`~repro.common.config.SystemConfig`, a mapping
    of per-section overrides (``{"mem": {"enabled": True}}``), or None
    for the defaults.  ``program`` (or each element of ``programs`` for
    multi-process runs) is an assembled
    :class:`~repro.isa.program.Program` or kernel source text, assembled
    on the fly.  ``observers`` are event sinks attached before the run;
    ``warm`` lists addresses pre-loaded into the caches — the hierarchy
    *and* the data cache when one is configured (e.g. a lock variable).

    When an *overrides mapping* requests sampling but the rest of the
    overrides make the run ineligible (SMP, preemptive quanta, faults,
    the data cache), the run falls back to detailed execution and the
    reason lands in :attr:`RunResult.sampling_fallback`.  A full
    SystemConfig never falls back — it validates at construction.
    """
    fallback: Optional[str] = None
    try:
        resolved = resolve_config(config)
    except ConfigError as error:
        if not (isinstance(config, Mapping) and "sampling" in config):
            raise
        # Sampling was an overlay on an otherwise-valid request: drop it,
        # run detailed, and report why (mirrors SweepRunner's fallback).
        stripped = {k: v for k, v in config.items() if k != "sampling"}
        resolved = resolve_config(stripped)
        fallback = str(error)
    system = System(resolved)
    for sink in observers:
        system.attach_observer(sink)
    sources = list(programs)
    if program is not None:
        sources.insert(0, program)
    for source in sources:
        if isinstance(source, str):
            source = assemble(source)
        system.add_process(source)
    for address in warm:
        system.warm(address)
    if system.config.sampling.enabled:
        from repro.sim.sampling import run_sampled

        stats = run_sampled(system, max_cycles=max_cycles)
    else:
        stats = system.run(max_cycles=max_cycles)
    return RunResult(
        system=system,
        stats=stats,
        metrics=MetricsSnapshot.from_system(system),
        sampling=system.sampling_report,
        sampling_fallback=fallback,
    )


def experiments() -> List[str]:
    """Every experiment id :func:`run_experiment` accepts."""
    from repro.evaluation.experiments import experiment_ids

    return experiment_ids()


def run_campaign(manifest, *, workers: int = 0, cache_dir: Optional[str] = None):
    """Execute a :class:`~repro.evaluation.campaign.CampaignManifest` and
    return its ``csb-campaign-1`` results document (a plain dict).

    ``workers=0`` (the default) runs serially in-process; ``workers>=1``
    shards the manifest's jobs across that many worker processes with
    crash-requeue — the two paths produce byte-identical documents.
    ``cache_dir`` names a shared result-cache directory (pooled runs
    only; the serial path honours the runner's own cache).  See
    docs/campaigns.md.
    """
    from repro.evaluation.campaign import run_campaign as _run_serial
    from repro.evaluation.service import run_campaign_pooled

    if workers < 0:
        raise ConfigError("workers must be >= 0")
    if workers == 0:
        return _run_serial(manifest)
    return run_campaign_pooled(manifest, workers=workers, cache_dir=cache_dir)


def run_experiment(
    experiment_id: str,
    config: ConfigLike = None,
    *,
    runner: "Optional[SweepRunner]" = None,
) -> "Table":
    """Regenerate one figure/table (see :func:`experiments` for ids).

    ``config`` takes the same shapes as :func:`simulate`: a mapping of
    per-section overrides (``{"mem": {"enabled": True}}``) merged over
    every simulation point's own configuration, a full SystemConfig
    (which pins *every* section — it collapses a sweep's varying
    dimension, so overrides mappings are usually what you want), or
    None.  Overrides ride on the runner, so they reach sweep-style
    experiments; single-run studies that ignore the runner are
    unaffected.
    """
    from repro.common.serialize import config_to_dict
    from repro.evaluation.experiments import run_experiment as _run
    from repro.evaluation.runner import default_runner

    if config is not None:
        if isinstance(config, SystemConfig):
            overrides = config_to_dict(config)
        elif isinstance(config, Mapping):
            overrides = dict(config)
        else:
            raise ConfigError(
                f"expected a SystemConfig, an overrides mapping, or None; "
                f"got {type(config).__name__}"
            )
        # Fail fast on unknown sections/fields before any simulation runs.
        apply_overrides(SystemConfig(), overrides)
        if runner is None:
            runner = default_runner()
        runner.overrides = overrides
    return _run(experiment_id, runner)
