"""The stable public facade: one import, three entry points.

Everything else in the package is implementation that may move between
releases; this module is the supported surface:

* :func:`simulate` — run one kernel on one configuration and get a
  :class:`RunResult` (stats, metrics, the finished system).
* :func:`experiments` — the ids of every figure/table the harness can
  regenerate.
* :func:`run_experiment` — regenerate one of them as a
  :class:`~repro.common.tables.Table`.

Example::

    from repro import simulate, SystemConfig
    from repro.workloads import store_kernel_csb

    result = simulate(SystemConfig(), store_kernel_csb(256, line_size=64))
    print(result.store_bandwidth, result.metrics.counters["csb.flushes"])

Observability plugs in through ``observers``::

    from repro.observability import RingBufferSink

    ring = RingBufferSink()
    result = simulate(config, kernel, observers=[ring])
    print(ring.counts())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.stats import StatsCollector
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.observability.metrics import MetricsSnapshot
from repro.observability.sinks import EventSink
from repro.sim.system import System

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.tables import Table
    from repro.evaluation.runner import SweepRunner


@dataclass(frozen=True)
class RunResult:
    """What :func:`simulate` hands back for one finished run."""

    system: System
    stats: StatsCollector
    metrics: MetricsSnapshot
    #: The sampled-execution report, or None for a fully detailed run.
    sampling: "Optional[object]" = None

    @property
    def store_bandwidth(self) -> float:
        """Bytes per bus cycle over the uncached-store window (the
        paper's Figure 3/4 metric)."""
        return self.system.store_bandwidth

    def span(self, start_label: str, end_label: str) -> float:
        """CPU cycles between two ``mark`` instructions (Figure 5).

        For a sampled run the span is reconstructed (skipped instructions
        charged at the sampled CPI) and may be fractional.
        """
        raw = self.system.span(start_label, end_label)
        if self.sampling is not None:
            return self.sampling.estimate_span(raw, start_label, end_label)
        return raw


def simulate(
    config: Optional[SystemConfig] = None,
    program: "Program | str | None" = None,
    *,
    programs: Sequence["Program | str"] = (),
    observers: Iterable[EventSink] = (),
    warm: Tuple[int, ...] = (),
    max_cycles: int = 5_000_000,
) -> RunResult:
    """Build a system, run kernel(s) to completion, return the result.

    ``program`` (or each element of ``programs`` for multi-process runs)
    is an assembled :class:`~repro.isa.program.Program` or kernel source
    text, assembled on the fly.  ``observers`` are event sinks attached
    before the run; ``warm`` lists addresses pre-loaded into the caches
    (e.g. a lock variable).
    """
    system = System(config)
    for sink in observers:
        system.attach_observer(sink)
    sources = list(programs)
    if program is not None:
        sources.insert(0, program)
    for source in sources:
        if isinstance(source, str):
            source = assemble(source)
        system.add_process(source)
    for address in warm:
        system.hierarchy.warm(address)
    if system.config.sampling.enabled:
        from repro.sim.sampling import run_sampled

        stats = run_sampled(system, max_cycles=max_cycles)
    else:
        stats = system.run(max_cycles=max_cycles)
    return RunResult(
        system=system,
        stats=stats,
        metrics=MetricsSnapshot.from_system(system),
        sampling=system.sampling_report,
    )


def experiments() -> List[str]:
    """Every experiment id :func:`run_experiment` accepts."""
    from repro.evaluation.experiments import experiment_ids

    return experiment_ids()


def run_experiment(
    experiment_id: str, runner: "Optional[SweepRunner]" = None
) -> "Table":
    """Regenerate one figure/table (see :func:`experiments` for ids)."""
    from repro.evaluation.experiments import run_experiment as _run

    return _run(experiment_id, runner)
