"""A small forward dataflow / abstract-interpretation engine.

The engine runs a worklist to a fixpoint over a
:class:`~repro.analysis.cfg.ControlFlowGraph`.  An analysis supplies three
things: an initial state for the entry block, a join (the least upper bound
of its semilattice), and a block transfer function.  The transfer function
returns **one out-state per successor edge**, which is what lets protocol
checks refine state along branch outcomes (the fall-through of
``brnz %l6, .ACQ`` is the path on which the spin lock was actually
acquired) while diamond-shaped control flow — retry loops, backoff arms —
is still joined soundly at the merge points.

Findings are only reported once the fixpoint has converged: the engine
re-runs the transfer function over every reachable block with a report
callback attached, so diagnostics are computed from the final (most
precise, still sound) in-states rather than from a transient iterate.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Generic, Optional, TypeVar

from repro.analysis.cfg import BasicBlock, ControlFlowGraph

S = TypeVar("S")

#: Report callback: ``(rule, index, message, hint)``.
Reporter = Callable[[str, int, str, str], None]


class Analysis(Generic[S]):
    """Interface a dataflow analysis implements.

    ``transfer`` must be monotone in the state argument and must not mutate
    the state it is given; it returns a mapping of successor block id to
    the out-state flowing along that edge.  When ``report`` is not ``None``
    the analysis is in its final reporting pass and may emit findings.
    """

    def initial_state(self) -> S:
        raise NotImplementedError

    def join(self, left: S, right: S) -> S:
        raise NotImplementedError

    def transfer(
        self,
        cfg: ControlFlowGraph,
        block: BasicBlock,
        state: S,
        report: Optional[Reporter] = None,
    ) -> Dict[int, S]:
        raise NotImplementedError


def solve(
    cfg: ControlFlowGraph,
    analysis: "Analysis[S]",
    max_iterations: int = 100_000,
) -> Dict[int, S]:
    """Run ``analysis`` to a fixpoint; returns the in-state of every
    reachable block.  Unreachable blocks have no in-state (bottom)."""
    in_states: Dict[int, S] = {0: analysis.initial_state()}
    worklist = deque([0])
    queued = {0}
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                "dataflow did not converge (non-monotone transfer function?)"
            )
        block_id = worklist.popleft()
        queued.discard(block_id)
        block = cfg.blocks[block_id]
        outs = analysis.transfer(cfg, block, in_states[block_id])
        for successor, out_state in outs.items():
            current = in_states.get(successor)
            merged = out_state if current is None else analysis.join(
                current, out_state
            )
            if current is None or merged != current:
                in_states[successor] = merged
                if successor not in queued:
                    worklist.append(successor)
                    queued.add(successor)
    return in_states


def report_pass(
    cfg: ControlFlowGraph,
    analysis: "Analysis[S]",
    in_states: Dict[int, S],
    report: Reporter,
) -> None:
    """Re-run the transfer function over every reachable block with the
    converged in-states, letting the analysis emit findings."""
    for block_id in sorted(in_states):
        analysis.transfer(cfg, cfg.blocks[block_id], in_states[block_id], report)
