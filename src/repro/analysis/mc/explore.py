"""Bounded exploration of cross-core interleavings of a litmus test.

``explore`` walks the reachable state space of a
:class:`~repro.analysis.mc.spec.SpecMachine` breadth-first with canonical
state hashing (states are frozen nested tuples, so the visited set is an
ordinary hash set) and a partial-order reduction: when any enabled core's
next operation is core-local, only that core's maximal local chain is
expanded (local operations commute with everything another core can do,
so exploring the other interleavings of the chain adds no new shared
behavior).  The reduction is sound for the invariants litmus tests state
because every shared-state change and every entry to a region guarded by
a shared operation still materializes as an explored state; invariants
must not depend on the *relative order* of two cores' local operations,
which no shipped litmus test does.

Violations reuse the PR-3 ``Finding`` JSON idiom: frozen records with
``to_dict`` shapes that are part of the tool contract, serialized with
sorted keys so output is byte-stable across Python versions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.analysis.mc.spec import SpecMachine, SpecState, is_local

#: Safety cap on one core-local chain: a longer chain means the litmus
#: program loops without touching shared state, which the stutter pruning
#: in schedule enumeration cannot bound.
_MAX_LOCAL_CHAIN = 128


@dataclass(frozen=True)
class Budget:
    """Exploration budget: states visited, transition depth, violations
    collected before the search stops early."""

    max_states: int = 50_000
    max_depth: int = 80
    max_violations: int = 8

    def __post_init__(self) -> None:
        if self.max_states < 1 or self.max_depth < 1 or self.max_violations < 1:
            raise ConfigError("budget fields must be >= 1")


@dataclass(frozen=True)
class TraceStep:
    """One transition of an interleaving: the core that moved, the op
    indices it executed (several for a chained local run), and a human
    label."""

    core: int
    ops: Tuple[int, ...]
    label: str

    def to_dict(self) -> Dict[str, object]:
        return {"core": self.core, "ops": list(self.ops), "label": self.label}


@dataclass(frozen=True)
class Violation:
    """One counterexample: the full interleaving from the initial state
    to the violating state, plus that state's rendering.

    ``kind`` is ``invariant`` (a property that must hold in every
    reachable state failed) or ``final`` (a property of fully halted
    states failed).  ``schedule`` is the per-transition core id sequence
    — the replayable essence of the trace.
    """

    kind: str
    test: str
    message: str
    depth: int
    schedule: Tuple[int, ...]
    trace: Tuple[TraceStep, ...] = field(compare=False)
    state: Dict[str, object] = field(compare=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "test": self.test,
            "message": self.message,
            "depth": self.depth,
            "schedule": list(self.schedule),
            "trace": [step.to_dict() for step in self.trace],
            "state": self.state,
        }

    def render(self) -> str:
        lines = [
            f"{self.test}: {self.kind} violation at depth {self.depth}: "
            f"{self.message}"
        ]
        for step in self.trace:
            lines.append(f"    {step.label}")
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of exploring one litmus test."""

    test: str
    description: str
    states: int
    transitions: int
    max_depth_seen: int
    complete: bool
    violations: List[Violation]
    mutation: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "test": self.test,
            "description": self.description,
            "states": self.states,
            "transitions": self.transitions,
            "max_depth_seen": self.max_depth_seen,
            "complete": self.complete,
            "mutation": self.mutation,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


def results_to_json(results: List[CheckResult], budget: Budget) -> str:
    """The stable ``csb-figures mc --json`` document (sorted keys)."""
    document = {
        "schema": "csb-mc-1",
        "budget": {
            "max_states": budget.max_states,
            "max_depth": budget.max_depth,
            "max_violations": budget.max_violations,
        },
        "results": [result.to_dict() for result in results],
        "total_violations": sum(len(r.violations) for r in results),
    }
    return json.dumps(document, indent=2, sort_keys=True)


# -- successor generation (shared by explore and schedule enumeration) ----------


def successors(
    machine: SpecMachine, state: SpecState
) -> List[Tuple[TraceStep, SpecState]]:
    """All transitions out of ``state`` under the partial-order reduction.

    If some enabled core's next op is local, return exactly that core's
    maximal local chain (a single transition).  Otherwise every enabled
    core's next op touches shared state and each of its successors is a
    separate transition.
    """
    enabled = machine.enabled(state)
    for core in enabled:
        if is_local(machine.next_op(state, core)):
            return [_local_chain(machine, state, core)]
    result: List[Tuple[TraceStep, SpecState]] = []
    for core in enabled:
        pc = state.pc(core)
        for label, new_state in machine.step(state, core):
            result.append((TraceStep(core, (pc,), label), new_state))
    return result


def _local_chain(
    machine: SpecMachine, state: SpecState, core: int
) -> Tuple[TraceStep, SpecState]:
    ops: List[int] = []
    labels: List[str] = []
    for _ in range(_MAX_LOCAL_CHAIN):
        ops.append(state.pc(core))
        steps = machine.step(state, core)
        assert len(steps) == 1, "local ops are deterministic"
        label, state = steps[0]
        labels.append(label)
        if state.halted(core) or not is_local(machine.next_op(state, core)):
            return (TraceStep(core, tuple(ops), "; ".join(labels)), state)
    raise ConfigError(
        f"core {core} ran {_MAX_LOCAL_CHAIN} local ops without touching "
        "shared state — the litmus program loops locally forever"
    )


# -- breadth-first exploration --------------------------------------------------


def explore(
    machine: SpecMachine,
    test_name: str,
    description: str = "",
    invariant: Optional[Callable[[SpecMachine, SpecState], Optional[str]]] = None,
    final: Optional[Callable[[SpecMachine, SpecState], Optional[str]]] = None,
    budget: Optional[Budget] = None,
    mutation: Optional[str] = None,
) -> CheckResult:
    """Breadth-first search over all interleavings, checking ``invariant``
    at every reachable state and ``final`` at every fully halted state.

    Returns a :class:`CheckResult`; ``complete`` is False when the state
    or depth budget truncated the search (violations found in the explored
    prefix are still reported).
    """
    budget = budget or Budget()
    initial = machine.initial_state()
    # parent map: state -> (predecessor, transition) for trace rebuild.
    parents: Dict[SpecState, Tuple[Optional[SpecState], Optional[TraceStep]]] = {
        initial: (None, None)
    }
    depths: Dict[SpecState, int] = {initial: 0}
    frontier: List[SpecState] = [initial]
    violations: List[Violation] = []
    seen_violations: set = set()
    transitions = 0
    max_depth_seen = 0
    complete = True

    def check(state: SpecState) -> None:
        checks = [("invariant", invariant)]
        if state.all_halted:
            checks.append(("final", final))
        for kind, prop in checks:
            if prop is None:
                continue
            message = prop(machine, state)
            if message is None:
                continue
            key = (kind, message)
            if key in seen_violations:
                continue
            seen_violations.add(key)
            trace = _rebuild_trace(parents, state)
            violations.append(
                Violation(
                    kind=kind,
                    test=test_name,
                    message=message,
                    depth=depths[state],
                    schedule=tuple(step.core for step in trace),
                    trace=trace,
                    state=state.render(),
                )
            )

    check(initial)
    while frontier and len(violations) < budget.max_violations:
        next_frontier: List[SpecState] = []
        for state in frontier:
            if state.all_halted:
                continue
            depth = depths[state]
            if depth >= budget.max_depth:
                complete = False
                continue
            for step, new_state in successors(machine, state):
                transitions += 1
                if new_state in parents:
                    continue
                if len(parents) >= budget.max_states:
                    complete = False
                    continue
                parents[new_state] = (state, step)
                depths[new_state] = depth + 1
                max_depth_seen = max(max_depth_seen, depth + 1)
                check(new_state)
                if len(violations) >= budget.max_violations:
                    break
                next_frontier.append(new_state)
            if len(violations) >= budget.max_violations:
                break
        frontier = next_frontier
    return CheckResult(
        test=test_name,
        description=description,
        states=len(parents),
        transitions=transitions,
        max_depth_seen=max_depth_seen,
        complete=complete,
        violations=violations,
        mutation=mutation,
    )


def _rebuild_trace(
    parents: Dict[SpecState, Tuple[Optional[SpecState], Optional[TraceStep]]],
    state: SpecState,
) -> Tuple[TraceStep, ...]:
    steps: List[TraceStep] = []
    cursor: Optional[SpecState] = state
    while cursor is not None:
        predecessor, step = parents[cursor]
        if step is not None:
            steps.append(step)
        cursor = predecessor
    return tuple(reversed(steps))


# -- complete-schedule enumeration (for simulator replay) -----------------------


def enumerate_schedules(
    machine: SpecMachine,
    budget: Optional[Budget] = None,
    max_schedules: Optional[int] = None,
) -> List[Tuple[TraceStep, ...]]:
    """Depth-first enumeration of complete (all-cores-halted) schedules.

    A path that revisits a global state it already passed through is
    pruned at the revisit (stutter equivalence: any completion from the
    second visit already exists from the first), which makes spin loops
    enumerable.  ``max_schedules`` caps the result; the depth budget
    bounds each path.
    """
    budget = budget or Budget()
    schedules: List[Tuple[TraceStep, ...]] = []
    initial = machine.initial_state()

    # Iterative DFS; each stack entry is (state, on-path set snapshot id,
    # trace so far).  Paths share tuple prefixes, so memory stays modest.
    stack: List[Tuple[SpecState, Tuple[TraceStep, ...], frozenset]] = [
        (initial, (), frozenset([initial]))
    ]
    while stack:
        state, trace, on_path = stack.pop()
        if state.all_halted:
            schedules.append(trace)
            if max_schedules is not None and len(schedules) >= max_schedules:
                return schedules
            continue
        if len(trace) >= budget.max_depth:
            continue
        # Reversed so the lexicographically first branch pops first.
        for step, new_state in reversed(successors(machine, state)):
            if new_state in on_path:
                continue
            stack.append((new_state, trace + (step,), on_path | {new_state}))
    return schedules
