"""Lower abstract litmus operations to real assembly.

Two lowerings:

* :func:`step_source` — one abstract op as a standalone mini-program
  ending in ``halt``.  The replay driver runs litmus tests through the
  detailed simulator *one abstract op at a time* (install, run to
  quiescence, park), which is what makes a spec transition and a
  simulator step comparable: the out-of-order core cannot speculate past
  a step boundary, because the boundary is the end of the program.
  Branches compile to a probe shape whose final program counter reveals
  the taken/fall-through outcome (see :data:`BRANCH_TAKEN_PC`).

* :func:`full_source` — a whole litmus program as one kernel, with the
  abstract labels preserved as assembly labels.  This is what promoted
  counterexample workloads register for linting and what a human pastes
  into the simulator to reproduce a trace.

Register convention: abstract programs use only ``%l0``–``%l7``
(:data:`~repro.analysis.mc.spec.SPEC_REGS`); the lowering claims ``%o6``
(value scratch) and ``%o7`` (address scratch).
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigError
from repro.analysis.mc.spec import (
    AddReg,
    BranchNZ,
    BranchZ,
    CombStore,
    CondFlush,
    DevLoad,
    DevStore,
    Goto,
    Halt,
    LockRelease,
    LockSwap,
    Membar,
    Op,
    SetReg,
    SpecProgram,
)

#: Scratch registers the lowering may clobber (never litmus state).
SCRATCH_VALUE = "%o6"
SCRATCH_ADDR = "%o7"

#: Final ``context.pc`` of a step-program branch probe when the branch was
#: taken.  The probe is ``branch .T`` / ``halt`` / ``.T: halt``; a retiring
#: halt leaves ``context.pc`` at its own index *plus one* (commit advances
#: the pc after the halt handler records it), so the fall-through halt at
#: index 1 yields pc 2 and the taken-side halt at index 2 yields pc 3.
BRANCH_TAKEN_PC = 3
BRANCH_FALL_PC = 2


def _body(op: Op) -> List[str]:
    """The op's effect as instructions (no terminator, no branching)."""
    if isinstance(op, SetReg):
        return [f"set {op.value}, %{op.reg}"]
    if isinstance(op, AddReg):
        if op.delta >= 0:
            return [f"add %{op.reg}, {op.delta}, %{op.reg}"]
        return [f"sub %{op.reg}, {-op.delta}, %{op.reg}"]
    if isinstance(op, Membar):
        return ["membar"]
    if isinstance(op, LockSwap):
        return [
            f"set {op.addr}, {SCRATCH_ADDR}",
            f"set 1, %{op.reg}",
            f"swap [{SCRATCH_ADDR}], %{op.reg}",
        ]
    if isinstance(op, LockRelease):
        return [
            f"set {op.addr}, {SCRATCH_ADDR}",
            f"stx %g0, [{SCRATCH_ADDR}]",
        ]
    if isinstance(op, (CombStore, DevStore)):
        return [
            f"set {op.value}, {SCRATCH_VALUE}",
            f"set {op.addr}, {SCRATCH_ADDR}",
            f"stx {SCRATCH_VALUE}, [{SCRATCH_ADDR}]",
        ]
    if isinstance(op, CondFlush):
        return [
            f"set {op.addr}, {SCRATCH_ADDR}",
            f"set {op.expected}, %{op.reg}",
            f"swap [{SCRATCH_ADDR}], %{op.reg}",
        ]
    if isinstance(op, DevLoad):
        return [
            f"set {op.addr}, {SCRATCH_ADDR}",
            f"ldx [{SCRATCH_ADDR}], %{op.reg}",
        ]
    raise ConfigError(f"op {op!r} has no straight-line body")


def step_source(op: Op) -> str:
    """One abstract op as a standalone program ending in ``halt``."""
    if isinstance(op, Halt):
        return "halt\n"
    if isinstance(op, Goto):
        lines = ["ba .T", "halt", ".T:", "halt"]
    elif isinstance(op, BranchNZ):
        lines = [f"brnz %{op.reg}, .T", "halt", ".T:", "halt"]
    elif isinstance(op, BranchZ):
        lines = [f"brz %{op.reg}, .T", "halt", ".T:", "halt"]
    else:
        lines = _body(op) + ["halt"]
    return "\n".join(lines) + "\n"


def full_source(program: SpecProgram) -> str:
    """The whole litmus program as one kernel, labels preserved."""
    by_index = {index: label for label, index in program.labels.items()}
    lines: List[str] = []
    for index, op in enumerate(program.ops):
        if index in by_index:
            lines.append(f"{by_index[index]}:")
        if isinstance(op, Halt):
            lines.append("halt")
        elif isinstance(op, Goto):
            lines.append(f"ba {op.target}")
        elif isinstance(op, BranchNZ):
            lines.append(f"brnz %{op.reg}, {op.target}")
        elif isinstance(op, BranchZ):
            lines.append(f"brz %{op.reg}, {op.target}")
        else:
            lines.extend(_body(op))
    return "\n".join(lines) + "\n"
