"""Auto-promotion: turn checker counterexamples into regression workloads.

A :class:`~repro.analysis.mc.explore.Violation` carries the interleaving
that exposed it.  Promotion distills that to its schedule — the per-
transition core id sequence — and wraps it as a
:class:`~repro.workloads.counterexamples.CounterexampleWorkload`: a named,
serializable artifact that (a) registers its compiled per-core programs
as lint targets and (b) replays the interleaving through the spec and the
detailed simulator as a permanent regression test.

Because a violation is found on a *mutated* (or buggy) machine, its exact
op-by-op trace may not exist on the correct machine (branch outcomes
differ).  What is preserved is the scheduling decision sequence:
:func:`realize_schedule` re-executes the core id sequence against any
machine — running a core's pending local chain or its single shared op —
and :func:`complete_schedule` extends it round-robin until every core
halts, so the promoted schedule is always replayable end to end.
"""

from __future__ import annotations

import json
import os
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.analysis.mc.explore import TraceStep, _local_chain
from repro.analysis.mc.litmus import LitmusTest
from repro.analysis.mc.spec import SpecMachine, SpecState, is_local

#: Completion bound: transitions appended past the recorded schedule.
_MAX_COMPLETION = 500


def advance_core(
    machine: SpecMachine, state: SpecState, core: int
) -> Tuple[TraceStep, SpecState]:
    """One scheduling decision: run ``core``'s local chain if its next op
    is local, else its single (deterministic) shared op."""
    if state.halted(core):
        raise ConfigError(f"core {core} already halted")
    if is_local(machine.next_op(state, core)):
        return _local_chain(machine, state, core)
    pc = state.pc(core)
    steps = machine.step(state, core)
    if len(steps) != 1:
        raise ConfigError("cannot realize a schedule through a NACK branch")
    label, new_state = steps[0]
    return (TraceStep(core, (pc,), label), new_state)


def realize_schedule(
    machine: SpecMachine, cores: Sequence[int]
) -> Tuple[List[TraceStep], SpecState]:
    """Execute a core id sequence, returning the trace and final state."""
    state = machine.initial_state()
    trace: List[TraceStep] = []
    for core in cores:
        step, state = advance_core(machine, state, core)
        trace.append(step)
    return trace, state


def complete_schedule(
    machine: SpecMachine, cores: Sequence[int]
) -> List[int]:
    """Extend ``cores`` round-robin until every core halts."""
    trace, state = realize_schedule(machine, list(cores))
    completed = [step.core for step in trace]
    for _ in range(_MAX_COMPLETION):
        if state.all_halted:
            return completed
        core = min(machine.enabled(state))
        step, state = advance_core(machine, state, core)
        completed.append(core)
    raise ConfigError(
        f"schedule did not complete within {_MAX_COMPLETION} extra "
        "transitions (livelocked litmus program?)"
    )


def promote_violation(test: LitmusTest, violation, mutation: str = "") -> "object":
    """Build a :class:`CounterexampleWorkload` from a violation on ``test``.

    ``mutation`` is the spec mutation the checker ran under (empty if the
    violation was found on the unmutated spec).  The violation's schedule
    is re-validated against the *correct* spec and completed so the
    promoted workload replays end to end.
    """
    from repro.workloads.counterexamples import CounterexampleWorkload

    machine = test.machine()
    cores = complete_schedule(machine, violation.schedule)
    return CounterexampleWorkload(
        name=f"cx-{test.name}",
        litmus=test.name,
        description=(
            f"promoted {violation.kind} counterexample: {violation.message}"
        ),
        schedule=tuple(cores),
        found_with=mutation,
    )


def write_counterexamples(workloads: Sequence[object], directory: str) -> List[str]:
    """Serialize promoted workloads as JSON files; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for workload in workloads:
        path = os.path.join(directory, f"{workload.name}.json")  # type: ignore[attr-defined]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(workload.to_dict(), handle, indent=2, sort_keys=True)  # type: ignore[attr-defined]
            handle.write("\n")
        paths.append(path)
    return paths
