"""Bounded model checker for the CSB protocol.

Layers: :mod:`spec` (abstract operational model of cores + shared CSB),
:mod:`explore` (bounded exhaustive search with partial-order reduction),
:mod:`litmus` (the checked protocol properties), :mod:`compile` (lowering
abstract ops to real assembly), :mod:`replay` (cross-validation against
the detailed simulator), :mod:`promote` (counterexample → regression
workload).
"""

from repro.analysis.mc.compile import full_source, step_source
from repro.analysis.mc.explore import (
    Budget,
    CheckResult,
    TraceStep,
    Violation,
    enumerate_schedules,
    explore,
    results_to_json,
)
from repro.analysis.mc.litmus import LitmusTest, get_test, litmus_tests
from repro.analysis.mc.promote import (
    complete_schedule,
    promote_violation,
    realize_schedule,
    write_counterexamples,
)
from repro.analysis.mc.replay import (
    Divergence,
    ReplayReport,
    replay_schedule,
    replay_test,
    watched_words,
)
from repro.analysis.mc.spec import (
    MUTATIONS,
    SPEC_REGS,
    SpecMachine,
    SpecProgram,
    SpecState,
    spec_program,
)

__all__ = [
    "Budget",
    "CheckResult",
    "Divergence",
    "LitmusTest",
    "MUTATIONS",
    "ReplayReport",
    "SPEC_REGS",
    "SpecMachine",
    "SpecProgram",
    "SpecState",
    "TraceStep",
    "Violation",
    "complete_schedule",
    "enumerate_schedules",
    "explore",
    "full_source",
    "get_test",
    "litmus_tests",
    "promote_violation",
    "realize_schedule",
    "replay_schedule",
    "replay_test",
    "results_to_json",
    "spec_program",
    "step_source",
    "watched_words",
    "write_counterexamples",
]
