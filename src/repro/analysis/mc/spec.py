"""Abstract operational model of cores + shared CSB + lock memory.

This is the *specification* side of the bounded model checker: a small,
sequentially consistent machine in which every abstract operation is one
atomic step.  It mirrors the conditional-store-buffer protocol of
:mod:`repro.uncached.csb` — combining windows keyed by (line, pid), the
expected-hit-count conditional flush, conflict abort that clears the
buffer, and optional fault-injected NACKs — but is deliberately written
against *this file only*, with no imports from ``repro.sim`` or
``repro.uncached``, so the detailed simulator can be checked against it
rather than trusted (Cohen & Schirmer's store-buffer reduction shape:
every implementation interleaving must be explainable by a spec
interleaving).

States are nested tuples (hashable, canonical by construction): per-core
(pc, halted, registers), the shared CSB (line, owner, valid words, hit
counter), and a sparse word-addressed memory covering locks, flushed
combining lines, and plain device words.

``SpecMachine.step`` is the transition relation.  It is deterministic
except for the conditional flush, which — when the test's ``max_nacks``
budget is not exhausted — also offers a fault branch modelling the CSB's
spurious-abort NACK (``csb_spurious_abort`` in the detailed simulator).

Seeded-bug **mutations** (``SpecMachine(mutation=...)``) each disable one
protocol guard so CI can prove the checker actually catches violations:

``skip-expected-check``
    The flush no longer compares the hit counter with the expected count.
``skip-pid-check``
    The flush no longer verifies the window owner.
``skip-line-check``
    The flush no longer verifies the flushed line address.
``no-clear-on-conflict``
    A conflicting flush leaves the stale window in place.
``lock-drop``
    The lock swap returns the old value but never writes the lock word.
``lost-store``
    Combining stores bump the hit counter but drop their data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigError

#: Registers litmus programs may use.  The lowering in
#: :mod:`repro.analysis.mc.compile` reserves %o6/%o7 as scratch, so the
#: abstract register file is the SPARC local window.
SPEC_REGS = tuple(f"l{i}" for i in range(8))

#: Word granularity of the abstract machine (one ``stx``).
WORD = 8

#: Named protocol-guard mutations (see module docstring).
MUTATIONS = (
    "skip-expected-check",
    "skip-pid-check",
    "skip-line-check",
    "no-clear-on-conflict",
    "lock-drop",
    "lost-store",
)


# -- abstract operations --------------------------------------------------------


@dataclass(frozen=True)
class SetReg:
    """reg := value (core-local)."""

    reg: str
    value: int


@dataclass(frozen=True)
class AddReg:
    """reg := reg + delta (core-local)."""

    reg: str
    delta: int


@dataclass(frozen=True)
class Goto:
    """Unconditional jump to a label (core-local)."""

    target: str


@dataclass(frozen=True)
class BranchNZ:
    """Jump to the label when reg != 0 (core-local)."""

    reg: str
    target: str


@dataclass(frozen=True)
class BranchZ:
    """Jump to the label when reg == 0 (core-local)."""

    reg: str
    target: str


@dataclass(frozen=True)
class LockSwap:
    """reg := [addr]; [addr] := 1 — the atomic swap-acquire (shared)."""

    addr: int
    reg: str


@dataclass(frozen=True)
class LockRelease:
    """[addr] := 0 — the store-release (shared)."""

    addr: int


@dataclass(frozen=True)
class Membar:
    """Memory barrier.  A no-op in the sequentially consistent spec; it
    exists so litmus programs lower to membar-correct implementation
    code (core-local)."""


@dataclass(frozen=True)
class CombStore:
    """One combining store of ``value`` to a word in CSB space (shared)."""

    addr: int
    value: int


@dataclass(frozen=True)
class CondFlush:
    """Conditional flush of ``addr``'s line expecting ``expected`` hits;
    ``reg`` receives the swap result (``expected`` on success, 0 on
    conflict) (shared)."""

    addr: int
    expected: int
    reg: str


@dataclass(frozen=True)
class DevStore:
    """Plain uncached device store of a word (shared)."""

    addr: int
    value: int


@dataclass(frozen=True)
class DevLoad:
    """Plain uncached device load of a word into ``reg`` (shared)."""

    addr: int
    reg: str


@dataclass(frozen=True)
class Halt:
    """Stop this core (core-local)."""


Op = Union[
    SetReg,
    AddReg,
    Goto,
    BranchNZ,
    BranchZ,
    LockSwap,
    LockRelease,
    Membar,
    CombStore,
    CondFlush,
    DevStore,
    DevLoad,
    Halt,
]

#: Core-local operations: they read and write only the issuing core's
#: registers and program counter, so they commute with every operation of
#: every other core — the partial-order reduction in the explorer chains
#: them into a single transition.
_LOCAL_OPS = (SetReg, AddReg, Goto, BranchNZ, BranchZ, Membar, Halt)


def is_local(op: Op) -> bool:
    return isinstance(op, _LOCAL_OPS)


class SpecProgram:
    """A finalized abstract program: ops plus a label table."""

    def __init__(self, ops: Sequence[Op], labels: Dict[str, int]) -> None:
        self.ops: Tuple[Op, ...] = tuple(ops)
        self.labels = dict(labels)
        for op in self.ops:
            target = getattr(op, "target", None)
            if target is not None and target not in self.labels:
                raise ConfigError(f"undefined label {target!r}")
            reg = getattr(op, "reg", None)
            if reg is not None and reg not in SPEC_REGS:
                raise ConfigError(
                    f"spec programs may only use {SPEC_REGS}, got {reg!r}"
                )
        if not self.ops or not isinstance(self.ops[-1], Halt):
            raise ConfigError("spec programs must end with Halt()")

    def __len__(self) -> int:
        return len(self.ops)


def spec_program(*items: Union[Op, str]) -> SpecProgram:
    """Build a program from ops interleaved with string labels::

        spec_program(".RETRY", CombStore(a, 1), CondFlush(a, 1, "l6"),
                     BranchZ("l6", ".RETRY"), Halt())
    """
    ops: List[Op] = []
    labels: Dict[str, int] = {}
    for item in items:
        if isinstance(item, str):
            if item in labels:
                raise ConfigError(f"duplicate label {item!r}")
            labels[item] = len(ops)
        else:
            ops.append(item)
    return SpecProgram(ops, labels)


# -- machine state --------------------------------------------------------------

#: One core: (pc, halted, regs) with regs a sorted tuple of (name, value).
CoreState = Tuple[int, bool, Tuple[Tuple[str, int], ...]]

#: The shared CSB: (line base or None, owner core or None,
#: sorted tuple of (word offset, value), hit counter).
CsbState = Tuple[Optional[int], Optional[int], Tuple[Tuple[int, int], ...], int]

#: Sparse memory: sorted tuple of (word address, value); absent words read 0.
MemState = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class SpecState:
    """One global state of the abstract machine (hashable, canonical)."""

    cores: Tuple[CoreState, ...]
    csb: CsbState
    mem: MemState
    nacks: int

    def reg(self, core: int, name: str) -> int:
        for reg, value in self.cores[core][2]:
            if reg == name:
                return value
        return 0

    def pc(self, core: int) -> int:
        return self.cores[core][0]

    def halted(self, core: int) -> bool:
        return self.cores[core][1]

    @property
    def all_halted(self) -> bool:
        return all(halted for _, halted, _ in self.cores)

    def word(self, addr: int) -> int:
        for address, value in self.mem:
            if address == addr:
                return value
        return 0

    def render(self) -> Dict[str, object]:
        """JSON-friendly view (hex addresses, stable key order)."""
        line, owner, words, counter = self.csb
        return {
            "cores": [
                {
                    "pc": pc,
                    "halted": halted,
                    "regs": {name: value for name, value in regs},
                }
                for pc, halted, regs in self.cores
            ],
            "csb": {
                "line": None if line is None else f"0x{line:x}",
                "owner": owner,
                "words": {f"+{offset}": value for offset, value in words},
                "counter": counter,
            },
            "mem": {f"0x{addr:x}": value for addr, value in self.mem},
            "nacks": self.nacks,
        }


_EMPTY_CSB: CsbState = (None, None, (), 0)


def _with_reg(
    regs: Tuple[Tuple[str, int], ...], name: str, value: int
) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted({**dict(regs), name: value}.items()))


def _with_word(mem: MemState, addr: int, value: int) -> MemState:
    return tuple(sorted({**dict(mem), addr: value}.items()))


class SpecMachine:
    """The transition relation over :class:`SpecState`.

    ``programs`` holds one :class:`SpecProgram` per core; the core index
    doubles as the process ID the CSB tags windows with.  ``max_nacks``
    bounds how many fault-injected spurious flush aborts the machine may
    take across a whole run (0 = fault-free, fully deterministic).
    """

    def __init__(
        self,
        programs: Sequence[SpecProgram],
        line_size: int = 64,
        mutation: Optional[str] = None,
        max_nacks: int = 0,
    ) -> None:
        if mutation is not None and mutation not in MUTATIONS:
            raise ConfigError(
                f"unknown spec mutation {mutation!r}; pick one of {MUTATIONS}"
            )
        if line_size % WORD:
            raise ConfigError("line_size must be a multiple of the word size")
        self.programs = list(programs)
        self.line_size = line_size
        self.mutation = mutation
        self.max_nacks = max_nacks

    # -- queries ----------------------------------------------------------------

    def initial_state(self) -> SpecState:
        return SpecState(
            cores=tuple((0, False, ()) for _ in self.programs),
            csb=_EMPTY_CSB,
            mem=(),
            nacks=0,
        )

    def enabled(self, state: SpecState) -> List[int]:
        return [
            core for core in range(len(self.programs)) if not state.halted(core)
        ]

    def next_op(self, state: SpecState, core: int) -> Op:
        return self.programs[core].ops[state.pc(core)]

    def _line_base(self, addr: int) -> int:
        return addr & ~(self.line_size - 1)

    # -- transition relation ----------------------------------------------------

    def step(self, state: SpecState, core: int) -> List[Tuple[str, SpecState]]:
        """All successors of ``state`` when ``core`` executes its next op.

        Deterministic (a single successor) for every operation except a
        matching conditional flush with NACK budget left, which also
        offers the fault branch.
        """
        if state.halted(core):
            raise ConfigError(f"core {core} is halted")
        pc, _, regs = state.cores[core]
        op = self.programs[core].ops[pc]
        label = f"c{core}@{pc}: "

        if isinstance(op, SetReg):
            return [self._local(state, core, pc + 1,
                                _with_reg(regs, op.reg, op.value),
                                label + f"{op.reg}={op.value}")]
        if isinstance(op, AddReg):
            value = state.reg(core, op.reg) + op.delta
            return [self._local(state, core, pc + 1,
                                _with_reg(regs, op.reg, value),
                                label + f"{op.reg}+={op.delta}")]
        if isinstance(op, Goto):
            target = self.programs[core].labels[op.target]
            return [self._local(state, core, target, regs,
                                label + f"goto {op.target}")]
        if isinstance(op, (BranchNZ, BranchZ)):
            value = state.reg(core, op.reg)
            taken = value != 0 if isinstance(op, BranchNZ) else value == 0
            target = self.programs[core].labels[op.target] if taken else pc + 1
            kind = "brnz" if isinstance(op, BranchNZ) else "brz"
            outcome = "taken" if taken else "fall"
            return [self._local(state, core, target, regs,
                                label + f"{kind} {op.reg} {outcome}")]
        if isinstance(op, Membar):
            return [self._local(state, core, pc + 1, regs, label + "membar")]
        if isinstance(op, Halt):
            cores = list(state.cores)
            cores[core] = (pc, True, regs)
            new = SpecState(tuple(cores), state.csb, state.mem, state.nacks)
            return [(label + "halt", new)]

        if isinstance(op, LockSwap):
            old = state.word(op.addr)
            mem = state.mem
            if self.mutation != "lock-drop":
                mem = _with_word(mem, op.addr, 1)
            new = self._advance(state, core, pc + 1,
                                _with_reg(regs, op.reg, old), mem=mem)
            return [(label + f"swap[0x{op.addr:x}]->{old}", new)]
        if isinstance(op, LockRelease):
            mem = _with_word(state.mem, op.addr, 0)
            new = self._advance(state, core, pc + 1, regs, mem=mem)
            return [(label + f"release[0x{op.addr:x}]", new)]
        if isinstance(op, DevStore):
            mem = _with_word(state.mem, op.addr, op.value)
            new = self._advance(state, core, pc + 1, regs, mem=mem)
            return [(label + f"dev[0x{op.addr:x}]={op.value}", new)]
        if isinstance(op, DevLoad):
            value = state.word(op.addr)
            new = self._advance(state, core, pc + 1,
                                _with_reg(regs, op.reg, value))
            return [(label + f"{op.reg}=dev[0x{op.addr:x}]->{value}", new)]
        if isinstance(op, CombStore):
            return [self._comb_store(state, core, pc, regs, op, label)]
        if isinstance(op, CondFlush):
            return self._cond_flush(state, core, pc, regs, op, label)
        raise ConfigError(f"unhandled op {op!r}")  # pragma: no cover

    # -- op helpers -------------------------------------------------------------

    def _local(
        self,
        state: SpecState,
        core: int,
        pc: int,
        regs: Tuple[Tuple[str, int], ...],
        label: str,
    ) -> Tuple[str, SpecState]:
        return (label, self._advance(state, core, pc, regs))

    def _advance(
        self,
        state: SpecState,
        core: int,
        pc: int,
        regs: Tuple[Tuple[str, int], ...],
        csb: Optional[CsbState] = None,
        mem: Optional[MemState] = None,
        nacks: Optional[int] = None,
    ) -> SpecState:
        cores = list(state.cores)
        cores[core] = (pc, False, regs)
        return SpecState(
            tuple(cores),
            state.csb if csb is None else csb,
            state.mem if mem is None else mem,
            state.nacks if nacks is None else nacks,
        )

    def _comb_store(
        self,
        state: SpecState,
        core: int,
        pc: int,
        regs: Tuple[Tuple[str, int], ...],
        op: CombStore,
        label: str,
    ) -> Tuple[str, SpecState]:
        line = self._line_base(op.addr)
        saved_line, owner, words, counter = state.csb
        note = ""
        if line != saved_line or core != owner:
            # Conflict (or first store of a sequence): clear and restart —
            # exactly ConditionalStoreBuffer.store's (line, pid) guard.
            words, counter = (), 0
            note = " (new window)"
        offset = op.addr - line
        if self.mutation != "lost-store":
            words = tuple(sorted({**dict(words), offset: op.value}.items()))
        csb = (line, core, words, counter + 1)
        new = self._advance(state, core, pc + 1, regs, csb=csb)
        return (label + f"csb[0x{op.addr:x}]={op.value}{note}", new)

    def _cond_flush(
        self,
        state: SpecState,
        core: int,
        pc: int,
        regs: Tuple[Tuple[str, int], ...],
        op: CondFlush,
        label: str,
    ) -> List[Tuple[str, SpecState]]:
        line = self._line_base(op.addr)
        saved_line, owner, words, counter = state.csb
        matches = counter > 0
        if self.mutation != "skip-expected-check":
            matches = matches and counter == op.expected
        if self.mutation != "skip-pid-check":
            matches = matches and owner == core
        if self.mutation != "skip-line-check":
            matches = matches and saved_line == line
        successors: List[Tuple[str, SpecState]] = []
        if matches:
            # The burst pads the full line with zeros (the paper's defense
            # against leaking a previous process's data), so every word of
            # the flushed line is written, stored or not.
            mem = state.mem
            flush_base = saved_line if saved_line is not None else line
            stored = dict(words)
            for offset in range(0, self.line_size, WORD):
                mem = _with_word(mem, flush_base + offset, stored.get(offset, 0))
            new = self._advance(
                state, core, pc + 1,
                _with_reg(regs, op.reg, op.expected),
                csb=_EMPTY_CSB, mem=mem,
            )
            successors.append(
                (label + f"flush[0x{line:x}] exp={op.expected} ok", new)
            )
            if state.nacks < self.max_nacks:
                # Fault branch: the injected spurious abort NACKs a clean
                # sequence; the buffer clears and software must retry.
                nacked = self._advance(
                    state, core, pc + 1, _with_reg(regs, op.reg, 0),
                    csb=_EMPTY_CSB, nacks=state.nacks + 1,
                )
                successors.append(
                    (label + f"flush[0x{line:x}] exp={op.expected} NACK", nacked)
                )
            return successors
        csb = state.csb if self.mutation == "no-clear-on-conflict" else _EMPTY_CSB
        new = self._advance(
            state, core, pc + 1, _with_reg(regs, op.reg, 0), csb=csb
        )
        return [(label + f"flush[0x{line:x}] exp={op.expected} conflict", new)]
