"""Cross-validation: replay enumerated schedules through the detailed simulator.

The bounded model checker's verdicts are only as good as the spec's
fidelity to the simulated hardware, so every *deterministic* litmus test
(no NACK budget) can be replayed: each enumerated schedule is forced
through the detailed out-of-order simulator one abstract operation at a
time, and after every operation the simulator's architectural state —
litmus registers, the CSB's exported window, and every watched memory
word — must equal the spec's.  A mismatch is a :class:`Divergence`;
"simulator behavior is contained in spec behavior" holds exactly when no
schedule diverges.

Mechanics: each abstract op lowers to a standalone mini-program ending in
``halt`` (:func:`~repro.analysis.mc.compile.step_source`), installed via
the :class:`~repro.sim.scheduler.CoreScheduler` schedule-forcing hook
(``force_install``/``force_park``, added for this driver and inert
otherwise).  Running each step to full quiescence means a conditional
flush's burst has landed in memory before the next core moves — the same
atomicity the spec's single-step flush assumes.  Architectural registers
persist across steps through RegisterFile snapshots; branch outcomes are
read back from the probe program's final program counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.cpu.context import ProcessContext
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.isa.registers import MASK64, RegisterFile, canonical_register
from repro.sim.system import System
from repro.analysis.mc.compile import (
    BRANCH_FALL_PC,
    BRANCH_TAKEN_PC,
    step_source,
)
from repro.analysis.mc.explore import Budget, TraceStep, enumerate_schedules
from repro.analysis.mc.litmus import LINE_SIZE, LitmusTest
from repro.analysis.mc.spec import (
    WORD,
    BranchNZ,
    BranchZ,
    CombStore,
    CondFlush,
    DevLoad,
    DevStore,
    Goto,
    LockRelease,
    LockSwap,
    SpecState,
)

#: Cycle cap for one abstract step (install → halt → quiescent).  Real
#: steps take tens of cycles; hitting this means the simulator wedged.
_STEP_CYCLE_CAP = 20_000


@dataclass(frozen=True)
class Divergence:
    """One spec/simulator mismatch during replay."""

    schedule_index: int
    step_index: int
    core: int
    op_index: int
    what: str
    expected: str
    actual: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "schedule_index": self.schedule_index,
            "step_index": self.step_index,
            "core": self.core,
            "op_index": self.op_index,
            "what": self.what,
            "expected": self.expected,
            "actual": self.actual,
        }

    def render(self) -> str:
        return (
            f"schedule {self.schedule_index}, step {self.step_index} "
            f"(core {self.core}, op {self.op_index}): {self.what}: "
            f"spec={self.expected} sim={self.actual}"
        )


@dataclass
class ReplayReport:
    """Outcome of replaying one litmus test's enumerated schedules."""

    test: str
    schedules: int
    steps: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> Dict[str, object]:
        return {
            "test": self.test,
            "schedules": self.schedules,
            "steps": self.steps,
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def watched_words(test: LitmusTest) -> List[int]:
    """Every word address whose value the spec models: lock words, device
    words, and each word of every combining line the test touches."""
    addrs: Set[int] = set()
    for program in test.programs:
        for op in program.ops:
            if isinstance(op, (LockSwap, LockRelease, DevStore, DevLoad)):
                addrs.add(op.addr)
            elif isinstance(op, (CombStore, CondFlush)):
                line = op.addr & ~(LINE_SIZE - 1)
                addrs.update(range(line, line + LINE_SIZE, WORD))
    return sorted(addrs)


def _litmus_regs(test: LitmusTest) -> List[Tuple[int, str]]:
    regs: Set[Tuple[int, str]] = set()
    for core, program in enumerate(test.programs):
        for op in program.ops:
            reg = getattr(op, "reg", None)
            if reg is not None:
                regs.add((core, reg))
    return sorted(regs)


class _StepPrograms:
    """Assembled per-op mini-programs, one per (core, op index)."""

    def __init__(self, test: LitmusTest) -> None:
        self._programs: Dict[Tuple[int, int], Program] = {}
        for core, program in enumerate(test.programs):
            for index, op in enumerate(program.ops):
                self._programs[(core, index)] = assemble(
                    step_source(op), name=f"{test.name}-c{core}-op{index}"
                )

    def get(self, core: int, index: int) -> Program:
        return self._programs[(core, index)]


def replay_schedule(
    test: LitmusTest,
    schedule: Sequence[TraceStep],
    schedule_index: int = 0,
    step_programs: Optional[_StepPrograms] = None,
) -> Tuple[List[Divergence], int]:
    """Replay one schedule; returns (divergences, abstract ops executed).

    Only deterministic tests replay: the spec step for every op must have
    exactly one successor (``max_nacks == 0``).
    """
    if not test.replayable:
        raise ConfigError(
            f"litmus test {test.name!r} has a NACK budget and is not "
            "deterministically replayable"
        )
    machine = test.machine()
    programs = step_programs or _StepPrograms(test)
    words = watched_words(test)
    regs = _litmus_regs(test)

    system = System(SystemConfig(num_cores=len(test.programs)))
    for queue in system.scheduler.queues:
        queue.held = True
    snapshots = [RegisterFile().snapshot() for _ in test.programs]

    divergences: List[Divergence] = []
    state = machine.initial_state()
    ops_run = 0

    def mismatch(step_index: int, core: int, op_index: int,
                 what: str, expected: object, actual: object) -> None:
        divergences.append(
            Divergence(
                schedule_index=schedule_index,
                step_index=step_index,
                core=core,
                op_index=op_index,
                what=what,
                expected=repr(expected),
                actual=repr(actual),
            )
        )

    for step_index, step in enumerate(schedule):
        for op_index in step.ops:
            if state.pc(step.core) != op_index:
                raise ConfigError(
                    f"schedule step {step_index} expects core {step.core} "
                    f"at op {op_index}, spec is at {state.pc(step.core)}"
                )
            op = machine.next_op(state, step.core)
            successors = machine.step(state, step.core)
            assert len(successors) == 1, "replayable tests are deterministic"
            _, state = successors[0]
            ops_run += 1

            context = _run_step(
                system, step.core, programs.get(step.core, op_index),
                snapshots[step.core],
            )
            snapshots[step.core] = context.registers.snapshot()

            # Branch probes: the final pc reveals the simulator's decision.
            if isinstance(op, (Goto, BranchNZ, BranchZ)):
                if isinstance(op, Goto):
                    taken = True
                elif isinstance(op, BranchNZ):
                    taken = state.reg(step.core, op.reg) != 0
                else:
                    taken = state.reg(step.core, op.reg) == 0
                expected_pc = BRANCH_TAKEN_PC if taken else BRANCH_FALL_PC
                if context.pc != expected_pc:
                    mismatch(step_index, step.core, op_index,
                             "branch outcome", expected_pc, context.pc)
            _compare_state(
                system, machine, state, test, words, regs, snapshots,
                lambda what, exp, act: mismatch(
                    step_index, step.core, op_index, what, exp, act
                ),
            )
            if divergences:
                return divergences, ops_run
    if not state.all_halted:
        raise ConfigError("schedule ended before every core halted")
    return divergences, ops_run


def _run_step(
    system: System, core: int, program: Program, snapshot: Dict[str, int]
) -> ProcessContext:
    """Run one mini-program on ``core`` to architectural quiescence."""
    context = ProcessContext(core + 1, program, name=program.name)
    context.registers.restore(snapshot)
    queue = system.scheduler.queues[core]
    queue.force_install(context)
    cycles = 0
    while not (
        context.halted and system.cores[core].drained and system._quiescent()
    ):
        system.step()
        cycles += 1
        if cycles > _STEP_CYCLE_CAP:
            raise ConfigError(
                f"step program {program.name} did not quiesce within "
                f"{_STEP_CYCLE_CAP} cycles"
            )
    queue.force_park()
    return context


def _compare_state(system, machine, state: SpecState, test, words, regs,
                   snapshots, report) -> None:
    # Litmus registers: the stepped core's snapshot was just refreshed and
    # no other core ran, so the snapshots are the live architectural state.
    for core, reg in regs:
        sim_value = snapshots[core][canonical_register(reg)]
        if sim_value != state.reg(core, reg) & MASK64:
            report(f"c{core} %{reg}", state.reg(core, reg), sim_value)
            return
    line, owner, spec_words, counter = state.csb
    sim_line, sim_pid, sim_data, sim_valid, sim_counter = system.csb.export_state()
    expected_pid = None if owner is None else owner + 1
    if sim_line != line or sim_pid != expected_pid or sim_counter != counter:
        report(
            "csb window",
            (line, expected_pid, counter),
            (sim_line, sim_pid, sim_counter),
        )
        return
    expected_data = bytearray(machine.line_size)
    expected_valid = [False] * machine.line_size
    for offset, value in spec_words:
        expected_data[offset:offset + WORD] = value.to_bytes(WORD, "big")
        for i in range(offset, offset + WORD):
            expected_valid[i] = True
    if bytes(expected_data) != sim_data or tuple(expected_valid) != sim_valid:
        report(
            "csb data",
            dict(spec_words),
            {"data": sim_data.hex(), "valid": sum(sim_valid)},
        )
        return
    for addr in words:
        sim_word = system.backing.read_int(addr, WORD)
        if sim_word != state.word(addr):
            report(f"mem[0x{addr:x}]", state.word(addr), sim_word)
            return


def replay_test(
    test: LitmusTest,
    budget: Optional[Budget] = None,
    max_schedules: Optional[int] = None,
) -> ReplayReport:
    """Enumerate ``test``'s complete schedules and replay every one."""
    schedules = enumerate_schedules(test.machine(), budget, max_schedules)
    if not schedules:
        raise ConfigError(
            f"no complete schedules of {test.name!r} within the budget"
        )
    programs = _StepPrograms(test)
    report = ReplayReport(test=test.name, schedules=len(schedules), steps=0)
    for index, schedule in enumerate(schedules):
        divergences, ops_run = replay_schedule(
            test, schedule, schedule_index=index, step_programs=programs
        )
        report.steps += ops_run
        report.divergences.extend(divergences)
        if divergences:
            break
    return report
