"""Litmus tests: tiny cross-core programs paired with assertions.

Each test names a :class:`~repro.analysis.mc.spec.SpecMachine` setup plus
two properties: an ``invariant`` checked at *every* reachable state (e.g.
mutual exclusion, no torn pair ever visible in memory) and a ``final``
property checked at fully halted states (e.g. eventual flush success, no
lost stores).  ``caught_by`` lists the seeded spec mutations each test is
known to expose — CI runs one of them to prove the checker can fail.

Some tests are deliberately protocol-*violating* programs (a window left
open at halt, a flush of another core's window): they verify the spec's
conflict behavior and would not pass the PR-3 linter.  Only the two
promoted counterexample workloads (``repro.workloads.counterexamples``)
enter the lint registry, and those compile from lint-clean retry-loop
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.memory.layout import DRAM_BASE, IO_COMBINING_BASE, IO_UNCACHED_BASE
from repro.analysis.mc.explore import Budget, CheckResult, explore
from repro.analysis.mc.spec import (
    AddReg,
    BranchNZ,
    BranchZ,
    CombStore,
    CondFlush,
    DevLoad,
    DevStore,
    Halt,
    LockRelease,
    LockSwap,
    Membar,
    SetReg,
    SpecMachine,
    SpecProgram,
    SpecState,
    spec_program,
)

#: Shared line size of every litmus machine (the simulator default).
LINE_SIZE = 64

#: Two distinct combining lines, one lock word, one device word.
LINE0 = IO_COMBINING_BASE
LINE1 = IO_COMBINING_BASE + LINE_SIZE
LOCK = DRAM_BASE + 0x9000
DEV = IO_UNCACHED_BASE + 0x100

Property = Callable[[SpecMachine, SpecState], Optional[str]]


@dataclass(frozen=True)
class LitmusTest:
    """One litmus test: programs, properties, and fault budget."""

    name: str
    description: str
    programs: Tuple[SpecProgram, ...]
    invariant: Optional[Property] = None
    final: Optional[Property] = None
    #: Spurious flush-abort (NACK) budget for the whole run.
    max_nacks: int = 0
    #: Mutations known to produce a violation on this test (asserted by CI).
    caught_by: Tuple[str, ...] = field(default=())
    #: Deterministic tests (no NACK branch) replay through the detailed
    #: simulator schedule-for-schedule.
    @property
    def replayable(self) -> bool:
        return self.max_nacks == 0

    def machine(self, mutation: Optional[str] = None) -> SpecMachine:
        return SpecMachine(
            self.programs,
            line_size=LINE_SIZE,
            mutation=mutation,
            max_nacks=self.max_nacks,
        )

    def run(
        self,
        budget: Optional[Budget] = None,
        mutation: Optional[str] = None,
    ) -> CheckResult:
        """Explore this test's interleavings; see
        :func:`repro.analysis.mc.explore.explore`."""
        return explore(
            self.machine(mutation),
            test_name=self.name,
            description=self.description,
            invariant=self.invariant,
            final=self.final,
            budget=budget,
            mutation=mutation,
        )


# -- property helpers -----------------------------------------------------------


def _pair(state: SpecState, base: int) -> Tuple[int, int]:
    return (state.word(base), state.word(base + 8))


def _pair_atomic(
    base: int, *images: Tuple[int, int]
) -> Property:
    """No reachable state may show a torn pair at ``base``: the two words
    are either both zero or exactly one core's committed image."""
    allowed = {(0, 0), *images}

    def prop(machine: SpecMachine, state: SpecState) -> Optional[str]:
        pair = _pair(state, base)
        if pair not in allowed:
            return (
                f"torn pair at 0x{base:x}: saw {pair}, "
                f"allowed {sorted(allowed)}"
            )
        return None

    return prop


def _all_of(*props: Property) -> Property:
    def prop(machine: SpecMachine, state: SpecState) -> Optional[str]:
        for candidate in props:
            message = candidate(machine, state)
            if message is not None:
                return message
        return None

    return prop


# -- the tests ------------------------------------------------------------------

_TESTS: List[LitmusTest] = []


def _register(test: LitmusTest) -> LitmusTest:
    if any(existing.name == test.name for existing in _TESTS):
        raise ConfigError(f"duplicate litmus test {test.name!r}")
    _TESTS.append(test)
    return test


def _retry_pair(base: int, a: int, b: int) -> SpecProgram:
    """The canonical lint-clean shape: two combining stores, a conditional
    flush expecting 2 hits, and an unbounded retry on conflict (mirrors
    ``contending_csb_kernel``)."""
    return spec_program(
        ".RETRY",
        CombStore(base + 0, a),
        CombStore(base + 8, b),
        CondFlush(base, 2, "l6"),
        BranchZ("l6", ".RETRY"),
        Halt(),
    )


# 1. combining-order: stores may arrive in any order within the line; only
# the count matters.  Catches lost-store.
def _combining_order_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    words = tuple(state.word(LINE0 + off) for off in (0, 8, 16))
    if words != (0xC1, 0xC2, 0xC3):
        return f"flushed line holds {words}, expected (0xc1, 0xc2, 0xc3)"
    if any(state.word(LINE0 + off) for off in range(24, LINE_SIZE, 8)):
        return "unwritten words of the flushed line are not zero-padded"
    if state.reg(0, "l6") != 3:
        return f"flush result {state.reg(0, 'l6')}, expected 3"
    return None


_register(
    LitmusTest(
        name="combining-order",
        description="out-of-order combining stores flush as one full line",
        programs=(
            spec_program(
                ".RETRY",
                CombStore(LINE0 + 16, 0xC3),
                CombStore(LINE0 + 0, 0xC1),
                CombStore(LINE0 + 8, 0xC2),
                CondFlush(LINE0, 3, "l6"),
                BranchZ("l6", ".RETRY"),
                Halt(),
            ),
        ),
        final=_combining_order_final,
        caught_by=("lost-store",),
    )
)


# 2. flush-vs-flush conflict: two cores race retry loops on the same line;
# memory only ever shows one core's atomic image.
def _ff_conflict_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    for core in (0, 1):
        if state.reg(core, "l6") != 2:
            return f"core {core} halted without a successful flush"
    if _pair(state, LINE0) not in {(0xA0, 0xB0), (0xA1, 0xB1)}:
        return f"final line image {_pair(state, LINE0)} is not one core's pair"
    return None


_register(
    LitmusTest(
        name="flush-flush-conflict",
        description="same-line retry loops on two cores never tear the line",
        programs=(
            _retry_pair(LINE0, 0xA0, 0xB0),
            _retry_pair(LINE0, 0xA1, 0xB1),
        ),
        invariant=_pair_atomic(LINE0, (0xA0, 0xB0), (0xA1, 0xB1)),
        final=_ff_conflict_final,
        caught_by=("lost-store",),
    )
)


# 3. window-split-cross: a two-store window on core 0 races a one-store
# window on core 1.  The pair must stay atomic even though core 1's flush
# zero-pads the words core 0 wrote.  Catches skip-expected-check.
def _split_cross_invariant(machine: SpecMachine, state: SpecState) -> Optional[str]:
    torn = _pair_atomic(LINE0, (0xA0, 0xB0))(machine, state)
    if torn is not None:
        return torn
    if state.word(LINE0 + 16) not in (0, 0xCC):
        return f"word +16 holds {state.word(LINE0 + 16)}"
    if state.word(LINE0) == 0xA0 and state.word(LINE0 + 16) == 0xCC:
        return "both cores' images visible at once (bursts are full-line)"
    return None


def _split_cross_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    image = tuple(state.word(LINE0 + off) for off in (0, 8, 16))
    if image not in {(0xA0, 0xB0, 0), (0, 0, 0xCC)}:
        return f"final line image {image} is not the last flusher's burst"
    return None


_register(
    LitmusTest(
        name="window-split-cross",
        description="a combining window split across cores stays atomic",
        programs=(
            _retry_pair(LINE0, 0xA0, 0xB0),
            spec_program(
                ".RETRY",
                CombStore(LINE0 + 16, 0xCC),
                CondFlush(LINE0, 1, "l6"),
                BranchZ("l6", ".RETRY"),
                Halt(),
            ),
        ),
        invariant=_split_cross_invariant,
        final=_split_cross_final,
        caught_by=("skip-expected-check",),
    )
)


# 4. window-split-local: one core splits its own sequence across two lines;
# the second store restarted the window, so a flush expecting the full
# count must conflict.  Catches skip-expected-check (the CI seeded bug).
def _split_local_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.reg(0, "l6") != 0:
        return "flush of a split sequence succeeded (expected conflict)"
    if state.word(LINE0) or state.word(LINE1):
        return "a split sequence leaked stores into memory"
    return None


_register(
    LitmusTest(
        name="window-split-local",
        description="a sequence split across lines never flushes",
        programs=(
            spec_program(
                CombStore(LINE0, 0xA0),
                CombStore(LINE1, 0xB1),
                CondFlush(LINE1, 2, "l6"),
                Halt(),
            ),
        ),
        final=_split_local_final,
        caught_by=("skip-expected-check",),
    )
)


# 5. stale-line-flush: flushing a different line than the open window must
# conflict.  Catches skip-line-check.
def _stale_line_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.reg(0, "l6") != 0:
        return "flush of the wrong line succeeded (expected conflict)"
    if state.word(LINE0) or state.word(LINE1):
        return "a wrong-line flush leaked stores into memory"
    return None


_register(
    LitmusTest(
        name="stale-line-flush",
        description="a flush of the wrong line conflicts and clears",
        programs=(
            spec_program(
                CombStore(LINE0, 0xAD),
                CondFlush(LINE1, 1, "l6"),
                Halt(),
            ),
        ),
        final=_stale_line_final,
        caught_by=("skip-line-check",),
    )
)


# 6. conflict-clears: a conflicting flush must clear the buffer, so a
# later store cannot resurrect the stale window.  Catches
# no-clear-on-conflict.
def _conflict_clears_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.reg(0, "l6") != 0 or state.reg(0, "l7") != 0:
        return "a flush after a conflict saw stale window state"
    if state.word(LINE0) or state.word(LINE0 + 8):
        return "stale window contents reached memory"
    return None


_register(
    LitmusTest(
        name="conflict-clears",
        description="a conflict abort clears the buffered line",
        programs=(
            spec_program(
                CombStore(LINE0 + 0, 0xA1),
                CondFlush(LINE0, 2, "l6"),
                CombStore(LINE0 + 8, 0xB2),
                CondFlush(LINE0, 2, "l7"),
                Halt(),
            ),
        ),
        final=_conflict_clears_final,
        caught_by=("no-clear-on-conflict",),
    )
)


# 7. flush-empty: a flush with no stores in flight always conflicts.
def _flush_empty_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.reg(0, "l6") != 0:
        return "an empty flush succeeded"
    if state.word(LINE0):
        return "an empty flush wrote memory"
    return None


_register(
    LitmusTest(
        name="flush-empty",
        description="an empty conditional flush always conflicts",
        programs=(
            spec_program(CondFlush(LINE0, 1, "l6"), Halt()),
        ),
        final=_flush_empty_final,
    )
)


# 8. pid-isolation: core 1 flushing core 0's window must conflict whatever
# the interleaving — the process-ID check is what makes the CSB safe to
# share without saving it on context switch.  Catches skip-pid-check.
def _pid_isolation_invariant(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.word(LINE0):
        return "another core's flush committed a window it does not own"
    return None


def _pid_isolation_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.reg(1, "l6") != 0:
        return "core 1 successfully flushed core 0's window"
    return None


_register(
    LitmusTest(
        name="pid-isolation",
        description="a flush only commits the issuing process's window",
        programs=(
            spec_program(CombStore(LINE0, 0xEE), Halt()),
            spec_program(CondFlush(LINE0, 1, "l6"), Halt()),
        ),
        invariant=_pid_isolation_invariant,
        final=_pid_isolation_final,
        caught_by=("skip-pid-check",),
    )
)


# 9/10. lock handoff + contention: swap-acquire spin loops.  The critical
# section spans the ops between the acquire branch and the release.
def _locked_dev_program(values: Tuple[int, ...]) -> SpecProgram:
    items: List[object] = [
        ".ACQ",
        LockSwap(LOCK, "l5"),
        BranchNZ("l5", ".ACQ"),
        Membar(),
    ]
    for offset, value in enumerate(values):
        items.append(DevStore(DEV + 8 * offset, value))
    items.extend([Membar(), LockRelease(LOCK), Halt()])
    return spec_program(*items)  # type: ignore[arg-type]


def _mutex_invariant(n_stores: int) -> Property:
    # Critical section: from the membar after the acquire through the
    # release (op indices 2 .. 4 + n_stores on _locked_dev_program's shape).
    cs_first, cs_last = 2, 4 + n_stores

    def prop(machine: SpecMachine, state: SpecState) -> Optional[str]:
        inside = [
            core
            for core in range(len(state.cores))
            if not state.halted(core) and cs_first <= state.pc(core) <= cs_last
        ]
        if len(inside) > 1:
            return f"mutual exclusion violated: cores {inside} in the CS"
        return None

    return prop


def _lock_handoff_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.word(LOCK) != 0:
        return "lock still held at halt"
    if state.word(DEV) not in (0xC0, 0xC1):
        return f"device word holds {state.word(DEV)}"
    return None


_register(
    LitmusTest(
        name="lock-handoff",
        description="swap-acquire spin lock is mutually exclusive",
        programs=(
            _locked_dev_program((0xC0,)),
            _locked_dev_program((0xC1,)),
        ),
        invariant=_mutex_invariant(1),
        final=_lock_handoff_final,
        caught_by=("lock-drop",),
    )
)


def _lock_contend_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.word(LOCK) != 0:
        return "lock still held at halt"
    if _pair(state, DEV) not in {(0xD0, 0xE0), (0xD1, 0xE1)}:
        return f"lock-protected pair torn: {_pair(state, DEV)}"
    return None


def _lock_contend_invariant(machine: SpecMachine, state: SpecState) -> Optional[str]:
    mutex = _mutex_invariant(2)(machine, state)
    if mutex is not None:
        return mutex
    inside = any(
        not state.halted(core) and 2 <= state.pc(core) <= 6
        for core in range(len(state.cores))
    )
    if not inside and _pair(state, DEV) not in {
        (0, 0),
        (0xD0, 0xE0),
        (0xD1, 0xE1),
    }:
        return f"torn pair visible outside the CS: {_pair(state, DEV)}"
    return None


_register(
    LitmusTest(
        name="lock-contend-store",
        description="a lock-protected pair is never torn outside the CS",
        programs=(
            _locked_dev_program((0xD0, 0xE0)),
            _locked_dev_program((0xD1, 0xE1)),
        ),
        invariant=_lock_contend_invariant,
        final=_lock_contend_final,
        caught_by=("lock-drop",),
    )
)


# 11. flush-vs-load-race: uncached loads bypass the CSB, so a reader racing
# a flush sees each word either pre-flush (0) or post-flush — never a
# partial word.  (The paper's refill-vs-flush shape, with the reader as
# the refilling agent.)
def _flush_load_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.reg(1, "l0") not in (0, 0xA7):
        return f"reader saw torn word 0: {state.reg(1, 'l0'):#x}"
    if state.reg(1, "l1") not in (0, 0xB7):
        return f"reader saw torn word 8: {state.reg(1, 'l1'):#x}"
    if state.reg(0, "l6") != 2 or _pair(state, LINE0) != (0xA7, 0xB7):
        return "writer's flush did not commit its pair"
    return None


_register(
    LitmusTest(
        name="flush-vs-load-race",
        description="a reader racing a flush sees whole words only",
        programs=(
            _retry_pair(LINE0, 0xA7, 0xB7),
            spec_program(
                DevLoad(LINE0 + 0, "l0"),
                DevLoad(LINE0 + 8, "l1"),
                Halt(),
            ),
        ),
        invariant=_pair_atomic(LINE0, (0xA7, 0xB7)),
        final=_flush_load_final,
        caught_by=("lost-store",),
    )
)


# 12. flush-flush-distinct-lines: contention on the *buffer*, not the
# line — both cores eventually succeed.
def _distinct_lines_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    for core, base, pair in ((0, LINE0, (0xA0, 0xB0)), (1, LINE1, (0xA1, 0xB1))):
        if state.reg(core, "l6") != 2:
            return f"core {core} halted without a successful flush"
        if _pair(state, base) != pair:
            return f"line 0x{base:x} holds {_pair(state, base)}"
    return None


_register(
    LitmusTest(
        name="flush-flush-distinct-lines",
        description="buffer contention on distinct lines still converges",
        programs=(
            _retry_pair(LINE0, 0xA0, 0xB0),
            _retry_pair(LINE1, 0xA1, 0xB1),
        ),
        invariant=_all_of(
            _pair_atomic(LINE0, (0xA0, 0xB0)),
            _pair_atomic(LINE1, (0xA1, 0xB1)),
        ),
        final=_distinct_lines_final,
        caught_by=("lost-store",),
    )
)


# 13. mixed-lock-csb: the two synchronization disciplines don't interfere.
def _mixed_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.word(LOCK) != 0:
        return "lock still held at halt"
    if _pair(state, DEV) != (0xD0, 0xE0):
        return f"locked pair wrong: {_pair(state, DEV)}"
    if state.reg(1, "l6") != 2 or _pair(state, LINE0) != (0xA1, 0xB1):
        return "CSB pair wrong or flush never succeeded"
    return None


_register(
    LitmusTest(
        name="mixed-lock-csb",
        description="lock traffic and CSB traffic do not interfere",
        programs=(
            _locked_dev_program((0xD0, 0xE0)),
            _retry_pair(LINE0, 0xA1, 0xB1),
        ),
        invariant=_pair_atomic(LINE0, (0xA1, 0xB1)),
        final=_mixed_final,
        caught_by=("lost-store",),
    )
)


# 14. nack-retry: one fault-injected spurious abort; the unbounded retry
# loop still commits (eventual flush success under faults).
def _nack_retry_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.reg(0, "l6") != 2 or _pair(state, LINE0) != (0xA5, 0xB5):
        return "retry loop did not recover from the injected NACK"
    return None


_register(
    LitmusTest(
        name="nack-retry",
        description="an injected NACK is absorbed by the retry loop",
        programs=(_retry_pair(LINE0, 0xA5, 0xB5),),
        invariant=_pair_atomic(LINE0, (0xA5, 0xB5)),
        final=_nack_retry_final,
        max_nacks=1,
        caught_by=("lost-store",),
    )
)


# 15. nack-exhaust: a *bounded* retry loop (3 attempts) still succeeds when
# the fault budget (2 NACKs) is smaller than the attempt budget.
def _nack_exhaust_final(machine: SpecMachine, state: SpecState) -> Optional[str]:
    if state.reg(0, "l6") != 2:
        return "bounded retry exhausted despite spare attempts"
    if _pair(state, LINE0) != (0xA6, 0xB6):
        return f"final pair wrong: {_pair(state, LINE0)}"
    if state.reg(0, "l3") + state.nacks != 3:
        return "attempt accounting inconsistent with injected NACKs"
    return None


_register(
    LitmusTest(
        name="nack-exhaust",
        description="bounded retries beat a smaller NACK budget",
        programs=(
            spec_program(
                SetReg("l3", 3),
                ".RETRY",
                CombStore(LINE0 + 0, 0xA6),
                CombStore(LINE0 + 8, 0xB6),
                CondFlush(LINE0, 2, "l6"),
                BranchNZ("l6", ".DONE"),
                AddReg("l3", -1),
                BranchNZ("l3", ".RETRY"),
                ".DONE",
                Halt(),
            ),
        ),
        invariant=_pair_atomic(LINE0, (0xA6, 0xB6)),
        final=_nack_exhaust_final,
        max_nacks=2,
        caught_by=("lost-store",),
    )
)


# -- registry -------------------------------------------------------------------


def litmus_tests() -> List[LitmusTest]:
    """Every litmus test, in stable registration order."""
    return list(_TESTS)


def get_test(name: str) -> LitmusTest:
    for test in _TESTS:
        if test.name == name:
            return test
    raise ConfigError(
        f"unknown litmus test {name!r}; have {[t.name for t in _TESTS]}"
    )
