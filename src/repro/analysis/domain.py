"""Abstract domain for the protocol checker.

Register contents are tracked in a flat constant lattice — ``bottom`` never
appears explicitly (an untracked register is simply absent, meaning TOP):

* an ``int`` — the register definitely holds that 64-bit constant
  (``set``/``mov`` and constant-folded ALU results);
* a *provenance tag* — the register holds a runtime-dependent value whose
  origin the checks care about: the old value returned by a lock ``swap``,
  a store-conditional result, or a conditional-flush result;
* :data:`TOP` — anything.

Constants are what let a static pass classify memory accesses at all: the
kernels materialize device and lock addresses with ``set``, so the checker
folds address arithmetic and maps the result through the address-space
layout to decide whether a ``swap`` is a spin-lock acquire (cached space)
or a conditional flush (uncached-combining space).

The protocol state joined at CFG merge points bundles the register map
with the lock map, the membar flags, the open combining window, and the
set of unconfirmed flushes.  All joins move strictly up finite lattices,
so the worklist converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Union

from repro.isa.registers import MASK64


class _Top:
    """Singleton: the register may hold anything."""

    _instance: Optional["_Top"] = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOP"


TOP = _Top()


@dataclass(frozen=True)
class SwapResult:
    """Old memory value returned by a cached (lock) ``swap [lock], rd``."""

    lock_addr: int


@dataclass(frozen=True)
class ScResult:
    """Result of ``sc rs, [lock], rd``: 1 = store succeeded, 0 = link lost."""

    lock_addr: int


@dataclass(frozen=True)
class FlushResult:
    """Result of a conditional flush: the expected hit count on success,
    zero on conflict.  ``site`` is the flush instruction's index."""

    site: int
    expected: Optional[int]


@dataclass(frozen=True)
class FlushCheck:
    """ICC after ``cmp`` of a :class:`FlushResult` against a constant:
    equality means success (compared against the expected count) or failure
    (compared against zero)."""

    site: int
    eq_means_success: bool


@dataclass(frozen=True)
class LockCheck:
    """ICC after ``cmp`` of a :class:`SwapResult` against zero: equality
    means the old lock value was free, i.e. the acquire succeeded."""

    lock_addr: int


Value = Union[int, _Top, SwapResult, ScResult, FlushResult, FlushCheck, LockCheck]

# -- lock states ---------------------------------------------------------------

LOCK_HELD = "held"
LOCK_FREE = "free"
LOCK_UNKNOWN = "unknown"  # differs across joined paths


def join_lock(left: str, right: str) -> str:
    return left if left == right else LOCK_UNKNOWN


# -- combining window ----------------------------------------------------------


@dataclass(frozen=True)
class Window:
    """An open CSB combining window: the aligned line base and the number
    of combining stores accumulated since it opened."""

    base: int
    count: int
    opened_at: int  # index of the store that opened the window


class _WindowTop:
    """The window may or may not be open (joined from disagreeing paths);
    window rules are suppressed rather than guessed."""

    _instance: Optional["_WindowTop"] = None

    def __new__(cls) -> "_WindowTop":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "WINDOW_TOP"


WINDOW_TOP = _WindowTop()

WindowState = Union[None, Window, _WindowTop]


def join_window(left: WindowState, right: WindowState) -> WindowState:
    if left == right:
        return left
    return WINDOW_TOP


# -- the joined protocol state -------------------------------------------------


@dataclass(frozen=True)
class ProtocolState:
    """Everything the protocol rules need at one program point.

    ``regs`` maps canonical register names to known values (absence means
    TOP; ``r0`` is implicitly the constant 0).  ``locks`` maps lock-variable
    addresses to :data:`LOCK_HELD` / :data:`LOCK_FREE` / :data:`LOCK_UNKNOWN`
    (absence means free).  ``membar_after_acquire`` is True when a membar
    has definitely executed since the most recent lock acquire;
    ``membar_since_device_store`` is True when no plain-uncached store has
    happened since the last membar (so a lock release is safe).  ``pending``
    is the set of flush sites whose success has not been established on
    this path.
    """

    regs: "FrozenDict" = field(default_factory=lambda: FrozenDict({}))
    locks: "FrozenDict" = field(default_factory=lambda: FrozenDict({}))
    membar_after_acquire: bool = True
    membar_since_device_store: bool = True
    window: WindowState = None
    pending: FrozenSet[int] = frozenset()

    # -- register accessors ----------------------------------------------------

    def value_of(self, name: str) -> Value:
        if name == "r0":
            return 0
        return self.regs.get(name, TOP)

    def with_reg(self, name: str, value: Value) -> "ProtocolState":
        if name == "r0":
            return self  # hardwired zero; writes are discarded
        mapping = dict(self.regs)
        if value is TOP:
            mapping.pop(name, None)
        else:
            mapping[name] = value
        return replace(self, regs=FrozenDict(mapping))

    def lock_state(self, addr: int) -> str:
        return self.locks.get(addr, LOCK_FREE)

    def with_lock(self, addr: int, state: str) -> "ProtocolState":
        mapping = dict(self.locks)
        mapping[addr] = state
        return replace(self, locks=FrozenDict(mapping))

    def any_lock_held(self) -> bool:
        return any(v == LOCK_HELD for v in self.locks.values())


class FrozenDict(dict):
    """A dict that is hashable/immutable enough for dataclass equality.

    Mutating methods are not blocked (the checker never calls them on a
    state in flight — updates go through ``with_reg``/``with_lock`` which
    copy), but equality is structural, which is all the worklist needs.
    """

    def __hash__(self) -> int:  # pragma: no cover - not used as dict keys
        return hash(frozenset(self.items()))


def join_values(left: Value, right: Value) -> Value:
    if left == right:
        return left
    return TOP


def join_states(left: ProtocolState, right: ProtocolState) -> ProtocolState:
    regs: Dict[str, Value] = {}
    for name in set(left.regs) & set(right.regs):
        joined = join_values(left.regs[name], right.regs[name])
        if joined is not TOP:
            regs[name] = joined
    locks: Dict[int, str] = {}
    for addr in set(left.locks) | set(right.locks):
        locks[addr] = join_lock(left.lock_state(addr), right.lock_state(addr))
    return ProtocolState(
        regs=FrozenDict(regs),
        locks=FrozenDict(locks),
        membar_after_acquire=(
            left.membar_after_acquire and right.membar_after_acquire
        ),
        membar_since_device_store=(
            left.membar_since_device_store and right.membar_since_device_store
        ),
        window=join_window(left.window, right.window),
        pending=left.pending | right.pending,
    )


# -- constant folding ----------------------------------------------------------

_ALU_FOLD = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 63),
    "srl": lambda a, b: a >> (b & 63),
    "mulx": lambda a, b: a * b,
}


def fold_alu(op: str, left: Value, right: Value) -> Value:
    """Constant-fold an ALU op; ``or``/``add`` with zero propagate tags
    (the assembler lowers ``mov`` to ``or rs, 0, rd``)."""
    if op in ("or", "add"):
        if right == 0:
            return left
        if left == 0:
            return right
    if isinstance(left, int) and isinstance(right, int):
        fold = _ALU_FOLD.get(op)
        if fold is not None:
            return fold(left, right) & MASK64
    return TOP
