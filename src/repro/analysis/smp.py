"""Cross-program SMP lint: lock handoffs between cores of one experiment.

The per-program protocol checks (:mod:`repro.analysis.protocol`) see one
kernel at a time, so a lock acquired in one program and released in
*another* — a handoff, the idiom SMP message-passing experiments use —
looks to each side like an unmatched operation.  The group rule here
checks the handoff itself:

``smp.unpaired-lock``
    A program takes a lock that a *different* program in the same SMP
    experiment releases (or releases one another acquires), without
    membar pairing: the acquirer must fence after its acquire and the
    releaser before its release, or the hardware may order the handoff
    before the data it protects (paper Figure 5 applied across cores).

Membar pairing is judged syntactically — an acquire needs *some* membar
at a later instruction index, a release *some* membar at an earlier one.
That is deliberately coarse: a cross-core pairing claim cannot be
path-sensitive in a single-program abstract interpretation, and the
syntactic check is exactly what the shipped SMP kernels satisfy.

Lock discovery is two-pass: each program is first solved alone to find
its constant cached ``swap``/``sc`` targets, then every program is
re-solved with the *union* of the group's lock addresses seeded, so a
program that only ever releases a lock still classifies that store as a
release rather than a plain cached store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import Reporter, solve
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.protocol import LintContext, ProtocolAnalysis
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_instruction
from repro.isa.instructions import MembarInstruction
from repro.isa.program import Program
from repro.memory.layout import PageAttr

#: Re-solve bound per program (mirrors the single-program lint driver).
_MAX_LOCK_DISCOVERY_ROUNDS = 8


class _LockEventCollector(ProtocolAnalysis):
    """Protocol analysis that additionally records lock acquire/release
    sites.  Events are (address, instruction index) pairs; recording is
    idempotent so re-running the transfer function (the solver visits
    blocks repeatedly) cannot duplicate them."""

    def __init__(
        self, context: LintContext, lock_addrs: Optional[Set[int]] = None
    ) -> None:
        super().__init__(context, lock_addrs)
        self.acquires: Set[Tuple[int, int]] = set()
        self.releases: Set[Tuple[int, int]] = set()

    def _swap(self, index, instruction, state, report):
        address = self._address_of(instruction, state)
        attr = self._classify(address)
        if attr is PageAttr.CACHED and address is not None:
            pre = state.value_of(instruction.rd)
            # Mirrors the superclass classification: swapping in a known
            # zero is a release; anything else (including unknown) is an
            # acquire attempt.
            if pre == 0:
                pass  # recorded via the _release hook below
            else:
                self.acquires.add((address, index))
        return super()._swap(index, instruction, state, report)

    def _release(self, index, address, state, report):
        self.releases.add((address, index))
        return super()._release(index, address, state, report)


def _collect(
    program: Program, context: LintContext, seed: Set[int]
) -> _LockEventCollector:
    """Solve ``program`` to a fixed point of lock-address discovery."""
    cfg = build_cfg(program)
    lock_addrs = set(seed)
    for _ in range(_MAX_LOCK_DISCOVERY_ROUNDS):
        collector = _LockEventCollector(context, lock_addrs)
        solve(cfg, collector)
        if collector.lock_addrs == lock_addrs:
            break
        lock_addrs = set(collector.lock_addrs)
    return collector


def _membar_indices(program: Program) -> Tuple[int, ...]:
    return tuple(
        index
        for index in range(len(program))
        if isinstance(program[index], MembarInstruction)
    )


def check_unpaired_locks(
    programs: Sequence[Tuple[str, Program, LintContext]],
    report: Reporter,
    programs_out: Optional[Dict[int, str]] = None,
) -> None:
    """Run the ``smp.unpaired-lock`` rule over one experiment's programs.

    ``report`` receives (rule, index, message, hint) per finding; because
    findings span programs, ``programs_out`` (when given) maps each
    reported index back to the program name it belongs to — the caller
    keys findings on it.  Indices are only unique per program, so the
    reporter is invoked once per (program, site) and the caller must
    attribute findings immediately.
    """
    union: Set[int] = set()
    for name, program, context in programs:
        union |= _collect(program, context, set()).lock_addrs

    events = []
    for name, program, context in programs:
        collector = _collect(program, context, union)
        events.append((name, program, collector, _membar_indices(program)))

    def acquires_of(collector, addr):
        return sorted(i for a, i in collector.acquires if a == addr)

    def releases_of(collector, addr):
        return sorted(i for a, i in collector.releases if a == addr)

    for addr in sorted(union):
        acquirers = [e for e in events if acquires_of(e[2], addr)]
        releasers = [e for e in events if releases_of(e[2], addr)]
        for name, program, collector, membars in acquirers:
            if releases_of(collector, addr):
                continue  # acquires and releases locally: not a handoff
            if not any(e[0] != name for e in releasers):
                continue  # nobody else releases it: not this rule's business
            for index in acquires_of(collector, addr):
                if any(m > index for m in membars):
                    continue
                if programs_out is not None:
                    programs_out[index] = name
                report(
                    "smp.unpaired-lock",
                    index,
                    f"lock 0x{addr:x} is handed off to another program's "
                    "release but the acquire has no membar after it",
                    "fence the acquire with a membar so accesses under the "
                    "lock cannot be ordered before the handoff",
                )
        for name, program, collector, membars in releasers:
            if acquires_of(collector, addr):
                continue
            if not any(e[0] != name for e in acquirers):
                continue
            for index in releases_of(collector, addr):
                if any(m < index for m in membars):
                    continue
                if programs_out is not None:
                    programs_out[index] = name
                report(
                    "smp.unpaired-lock",
                    index,
                    f"lock 0x{addr:x} acquired by another program is "
                    "released here with no membar before the release",
                    "fence the release with a membar so the protected "
                    "accesses are visible before the lock is dropped",
                )


def lint_group(targets: Sequence) -> List[Finding]:
    """Run the cross-program rules over one named group of lint targets.

    ``targets`` is a sequence of ``LintTarget``-shaped objects (name,
    source, context).  Only group rules run here — CI runs the
    single-program linter over the same targets separately.
    """
    from repro.analysis.linter import RULES

    programs = [
        (t.name, assemble(t.source, name=t.name), t.context) for t in targets
    ]
    by_name = {name: program for name, program, _ in programs}

    findings: List[Finding] = []
    attribution: Dict[int, str] = {}

    def report(rule: str, index: int, message: str, hint: str) -> None:
        if rule not in RULES:
            raise ValueError(f"unregistered lint rule {rule!r}")
        program_name = attribution.get(index, "")
        program = by_name[program_name] if program_name in by_name else None
        findings.append(
            Finding(
                rule=rule,
                severity=RULES[rule],
                index=index,
                instruction=(
                    disassemble_instruction(program[index])
                    if program is not None
                    else ""
                ),
                message=message,
                hint=hint,
                program=program_name,
            )
        )

    check_unpaired_locks(programs, report, programs_out=attribution)
    return sort_findings(findings)
