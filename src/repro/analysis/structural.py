"""Structural checks: unreachable code and use-before-def of registers.

Rule ids reported here (severity ``warning``):

``cfg.unreachable``
    A basic block no path from the entry can reach (dead code after an
    unconditional branch or halt, or an orphaned label).
``reg.use-before-def``
    A register the program itself defines somewhere is read on some path
    before any definition reaches it.  Registers a program only ever
    *reads* are treated as inputs — kernels legitimately consume payload
    registers preloaded by the harness (``ProcessContext.set_register``),
    and every register is architecturally zero at process start.  But when
    the program does write a register, a read that a definition does not
    dominate is almost always a misordered initialization.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.cfg import BasicBlock, ControlFlowGraph
from repro.analysis.dataflow import Analysis, Reporter, report_pass, solve
from repro.isa.instructions import BranchInstruction, HaltInstruction
from repro.isa.program import Program
from repro.isa.registers import register_names


def check_unreachable(cfg: ControlFlowGraph, report: Reporter) -> None:
    """Report every basic block the entry cannot reach."""
    reachable = cfg.reachable()
    for block in cfg.blocks:
        if block.block_id not in reachable:
            report(
                "cfg.unreachable",
                block.start,
                f"unreachable code ({len(block)} instruction(s))",
                "remove the dead instructions or add a branch that "
                "reaches them",
            )


class DefinedRegisters(Analysis[FrozenSet[str]]):
    """Forward must-analysis of definitely-defined registers.

    The state is the set of registers a definition definitely reaches;
    joins intersect (a register is defined only if it is defined on every
    incoming path).  The entry state contains ``r0`` plus every register
    the program never writes (those are inputs).
    """

    def __init__(self, program: Program) -> None:
        written: Set[str] = set()
        for instruction in program:
            destination = instruction.destination()
            if destination is not None:
                written.add(destination)
        inputs = set(register_names()) - written
        inputs.add("r0")
        self._entry: FrozenSet[str] = frozenset(inputs)

    def initial_state(self) -> FrozenSet[str]:
        return self._entry

    def join(self, left: FrozenSet[str], right: FrozenSet[str]) -> FrozenSet[str]:
        return left & right

    def transfer(
        self,
        cfg: ControlFlowGraph,
        block: BasicBlock,
        state: FrozenSet[str],
        report: Optional[Reporter] = None,
    ) -> Dict[int, FrozenSet[str]]:
        defined = set(state)
        for index, instruction in cfg.instructions(block):
            if report is not None:
                undefined = [
                    name
                    for name in instruction.sources()
                    if name not in defined
                ]
                for name in undefined:
                    report(
                        "reg.use-before-def",
                        index,
                        f"register %{name} is read before any definition "
                        "reaches it",
                        f"initialize %{name} on every path before this "
                        "instruction (the program writes it elsewhere, so "
                        "it is not a harness-provided input)",
                    )
            destination = instruction.destination()
            if destination is not None:
                defined.add(destination)
        out = frozenset(defined)
        last = cfg.program[block.end - 1]
        successors: Dict[int, FrozenSet[str]] = {}
        if isinstance(last, BranchInstruction):
            taken = cfg.block_starting_at(
                cfg.program.target_of(last)
            ).block_id
            successors[taken] = out
            if last.op != "ba" and block.end < len(cfg.program):
                successors[block.block_id + 1] = out
        elif not isinstance(last, HaltInstruction) and block.end < len(
            cfg.program
        ):
            successors[block.block_id + 1] = out
        return successors


def check_use_before_def(cfg: ControlFlowGraph, report: Reporter) -> None:
    """Run the defined-registers analysis and report offending reads."""
    analysis = DefinedRegisters(cfg.program)
    in_states = solve(cfg, analysis)
    report_pass(cfg, analysis, in_states, report)


STRUCTURAL_RULES: List[str] = ["cfg.unreachable", "reg.use-before-def"]
