"""The lint driver: run every static check over one program.

``lint_program`` builds the CFG, runs the structural checks and the
protocol abstract interpretation, and returns deduplicated, deterministic
:class:`~repro.analysis.findings.Finding` objects.  ``lint_source``
assembles first, so call sites can lint the same kernel text they hand to
the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import report_pass, solve
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    sort_findings,
)
from repro.analysis.protocol import LintContext, ProtocolAnalysis
from repro.analysis.structural import check_unreachable, check_use_before_def
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_instruction
from repro.isa.program import Program

#: Every rule the linter can emit, with its severity.  Protocol violations
#: are errors (the simulated hardware will lose stores or deadlock);
#: structural findings are warnings (suspicious, not necessarily fatal).
RULES: Dict[str, str] = {
    "lock.double-acquire": SEVERITY_ERROR,
    "lock.release-without-acquire": SEVERITY_ERROR,
    "lock.nonzero-store": SEVERITY_ERROR,
    "lock.held-at-halt": SEVERITY_ERROR,
    "membar.missing-after-acquire": SEVERITY_ERROR,
    "membar.missing-before-release": SEVERITY_ERROR,
    "csb.flush-empty": SEVERITY_ERROR,
    "csb.store-outside-window": SEVERITY_ERROR,
    "csb.flush-wrong-line": SEVERITY_ERROR,
    "csb.expected-mismatch": SEVERITY_ERROR,
    "csb.split-sequence": SEVERITY_ERROR,
    "csb.no-retry": SEVERITY_ERROR,
    "csb.unflushed-window": SEVERITY_ERROR,
    # Group rule (cross-program; emitted by repro.analysis.smp.lint_group,
    # never by lint_program): an SMP lock handoff without membar pairing.
    "smp.unpaired-lock": SEVERITY_ERROR,
    "cfg.unreachable": SEVERITY_WARNING,
    "reg.use-before-def": SEVERITY_WARNING,
}

#: Protocol re-solve bound: each round can only add newly discovered lock
#: addresses, so this is a safety net, not a tuning knob.
_MAX_LOCK_DISCOVERY_ROUNDS = 8


def all_rules() -> List[str]:
    """Stable catalog of rule ids (documented in docs/static_analysis.md)."""
    return sorted(RULES)


def lint_program(
    program: Program,
    context: Optional[LintContext] = None,
    name: Optional[str] = None,
) -> List[Finding]:
    """Run every check over a finalized program; returns sorted findings."""
    context = context or LintContext()
    program_name = name if name is not None else program.name
    cfg = build_cfg(program)

    raw: Set[Tuple[str, int, str, str]] = set()

    def report(rule: str, index: int, message: str, hint: str) -> None:
        if rule not in RULES:
            raise ValueError(f"unregistered lint rule {rule!r}")
        raw.add((rule, index, message, hint))

    check_unreachable(cfg, report)
    check_use_before_def(cfg, report)

    lock_addrs: Set[int] = set()
    for _ in range(_MAX_LOCK_DISCOVERY_ROUNDS):
        analysis = ProtocolAnalysis(context, lock_addrs)
        in_states = solve(cfg, analysis)
        if analysis.lock_addrs == lock_addrs:
            break
        lock_addrs = set(analysis.lock_addrs)
    report_pass(cfg, analysis, in_states, report)

    findings = [
        Finding(
            rule=rule,
            severity=RULES[rule],
            index=index,
            instruction=disassemble_instruction(program[index]),
            message=message,
            hint=hint,
            program=program_name,
        )
        for rule, index, message, hint in raw
    ]
    return sort_findings(findings)


def lint_source(
    source: str,
    context: Optional[LintContext] = None,
    name: str = "program",
) -> List[Finding]:
    """Assemble ``source`` and lint the resulting program."""
    return lint_program(assemble(source, name=name), context=context, name=name)
