"""Static protocol analysis for guest programs (see docs/static_analysis.md).

The CSB only behaves as the paper promises when guest code follows its
protocol: swap-based lock acquire/release pairing, membars fencing device
access, combining stores confined to one aligned line window, and a
checked, retried conditional flush.  This package verifies those
program-order properties *before* simulation: a control-flow graph over
finalized :class:`~repro.isa.program.Program` objects, a worklist abstract
interpreter, and a rule suite that reports
:class:`~repro.analysis.findings.Finding` diagnostics with stable ids and
machine-readable JSON.

Quick use::

    from repro.analysis import lint_source

    for finding in lint_source(kernel_text):
        print(finding.render())

``csb-figures lint`` runs the same checks over every registered workload.
"""

from repro.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.dataflow import Analysis, report_pass, solve
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    findings_to_json,
    sort_findings,
)
from repro.analysis.linter import RULES, all_rules, lint_program, lint_source
from repro.analysis.protocol import LintContext, ProtocolAnalysis
from repro.analysis.registry import (
    LintGroup,
    LintTarget,
    iter_lint_groups,
    iter_lint_targets,
    lint_groups,
    lint_targets,
)
from repro.analysis.smp import check_unpaired_locks, lint_group

__all__ = [
    "Analysis",
    "BasicBlock",
    "ControlFlowGraph",
    "Finding",
    "LintContext",
    "LintGroup",
    "LintTarget",
    "ProtocolAnalysis",
    "RULES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "all_rules",
    "build_cfg",
    "check_unpaired_locks",
    "findings_to_json",
    "iter_lint_groups",
    "iter_lint_targets",
    "lint_group",
    "lint_groups",
    "lint_program",
    "lint_source",
    "lint_targets",
    "report_pass",
    "solve",
    "sort_findings",
]
