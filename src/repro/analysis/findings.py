"""Lint findings: the machine-readable diagnostic record.

Every protocol check reports violations as :class:`Finding` objects carrying
a stable rule id, a severity, the instruction index the finding anchors to,
the disassembled instruction text, a human message, and a fix hint.  The
JSON shape produced by :meth:`Finding.to_dict` is part of the tool's public
contract (CI consumes it via ``csb-figures lint --format json``); fields
may be added but never renamed or removed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Severity levels, ordered from most to least severe.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by the static checker.

    ``rule`` is a stable dotted identifier (``lock.double-acquire``,
    ``csb.flush-empty``, ...); ``index`` is the instruction index inside the
    finalized program the finding anchors to; ``instruction`` is that
    instruction's disassembly, so diagnostics are readable without the
    source at hand.
    """

    rule: str
    severity: str
    index: int
    instruction: str
    message: str
    hint: str = ""
    program: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> Dict[str, Any]:
        """Stable machine-readable shape (see docs/static_analysis.md).

        Every value is pinned to a plain JSON type here — severity through
        the :data:`SEVERITIES` table, index through ``int`` — so the wire
        shape cannot drift if the in-memory representation ever changes
        (e.g. severities becoming an enum).
        """
        return {
            "rule": str(self.rule),
            "severity": SEVERITIES[SEVERITIES.index(self.severity)],
            "index": int(self.index),
            "instruction": str(self.instruction),
            "message": str(self.message),
            "hint": str(self.hint),
            "program": str(self.program),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`; unknown keys are rejected so schema
        drift fails loudly in round-trip tests."""
        known = {"rule", "severity", "index", "instruction", "message",
                 "hint", "program"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown finding fields: {sorted(extra)}")
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            index=int(data["index"]),
            instruction=str(data["instruction"]),
            message=str(data["message"]),
            hint=str(data.get("hint", "")),
            program=str(data.get("program", "")),
        )

    def render(self) -> str:
        """One-line human-readable form."""
        where = f"{self.program}:{self.index}" if self.program else str(self.index)
        line = (
            f"{where}: {self.severity}: [{self.rule}] {self.message} "
            f"`{self.instruction}`"
        )
        if self.hint:
            line += f" (hint: {self.hint})"
        return line


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: by instruction index, then rule id."""
    return sorted(findings, key=lambda f: (f.program, f.index, f.rule))


def findings_to_json(findings: List[Finding]) -> str:
    """Render findings as a JSON array (sorted findings, sorted keys,
    two-space indent) — byte-stable for identical finding sets."""
    return json.dumps(
        [finding.to_dict() for finding in sort_findings(findings)],
        indent=2,
        sort_keys=True,
    )
