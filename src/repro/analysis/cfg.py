"""Control-flow graph over a finalized :class:`repro.isa.program.Program`.

Basic blocks are maximal straight-line instruction runs: a leader starts at
index 0, at every branch target, and immediately after every branch or
halt.  Edges follow the ISA's control transfers — a conditional branch has
a taken edge and a fall-through edge, ``ba`` only the taken edge, ``halt``
none.  The CFG is the substrate every dataflow check runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.common.errors import ReproError
from repro.isa.instructions import BranchInstruction, HaltInstruction, Instruction
from repro.isa.program import Program


class CfgError(ReproError):
    """The program violates a structural CFG invariant."""


@dataclass
class BasicBlock:
    """A maximal straight-line run ``[start, end)`` of instruction indices."""

    block_id: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def indices(self) -> range:
        return range(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"BasicBlock(#{self.block_id}, [{self.start}:{self.end}), "
            f"succ={self.successors})"
        )


class ControlFlowGraph:
    """Basic blocks plus successor/predecessor edges and reachability."""

    def __init__(self, program: Program, blocks: List[BasicBlock]) -> None:
        self.program = program
        self.blocks = blocks
        self._block_at: Dict[int, int] = {
            block.start: block.block_id for block in blocks
        }

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block_starting_at(self, index: int) -> BasicBlock:
        try:
            return self.blocks[self._block_at[index]]
        except KeyError:
            raise CfgError(f"no basic block starts at instruction {index}") from None

    def instructions(self, block: BasicBlock) -> Iterator[Tuple[int, Instruction]]:
        """(index, instruction) pairs of one block, in program order."""
        for index in block.indices():
            yield index, self.program[index]

    def reachable(self) -> Set[int]:
        """Block ids reachable from the entry block."""
        seen: Set[int] = set()
        stack = [0]
        while stack:
            block_id = stack.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            stack.extend(self.blocks[block_id].successors)
        return seen

    def __len__(self) -> int:
        return len(self.blocks)


def _leaders(program: Program) -> List[int]:
    leaders = {0}
    for index, instruction in enumerate(program):
        if isinstance(instruction, BranchInstruction):
            leaders.add(program.target_of(instruction))
            if index + 1 < len(program):
                leaders.add(index + 1)
        elif isinstance(instruction, HaltInstruction):
            if index + 1 < len(program):
                leaders.add(index + 1)
    return sorted(leaders)


def build_cfg(program: Program) -> ControlFlowGraph:
    """Partition ``program`` into basic blocks and wire the edges."""
    if not program.finalized:
        raise CfgError("build_cfg requires a finalized program")
    leaders = _leaders(program)
    bounds = leaders + [len(program)]
    blocks = [
        BasicBlock(block_id, start, end)
        for block_id, (start, end) in enumerate(zip(bounds, bounds[1:]))
    ]
    cfg = ControlFlowGraph(program, blocks)
    for block in blocks:
        last = program[block.end - 1]
        targets: List[int] = []
        if isinstance(last, BranchInstruction):
            target_block = cfg.block_starting_at(program.target_of(last))
            targets.append(target_block.block_id)
            if last.op != "ba" and block.end < len(program):
                targets.append(block.block_id + 1)
        elif isinstance(last, HaltInstruction):
            pass  # no successors
        elif block.end < len(program):
            targets.append(block.block_id + 1)
        for target in targets:
            if target not in block.successors:
                block.successors.append(target)
                blocks[target].predecessors.append(block.block_id)
    return cfg


def fallthrough_successor(
    cfg: ControlFlowGraph, block: BasicBlock
) -> Optional[int]:
    """The not-taken successor of a block ending in a conditional branch
    (``None`` for ``ba``, halt, or a block ending at the program's edge)."""
    last = cfg.program[block.end - 1]
    if not isinstance(last, BranchInstruction) or last.op == "ba":
        return None
    if block.end >= len(cfg.program):
        return None
    return block.block_id + 1


def taken_successor(cfg: ControlFlowGraph, block: BasicBlock) -> Optional[int]:
    """The taken-branch successor of a block ending in a branch."""
    last = cfg.program[block.end - 1]
    if not isinstance(last, BranchInstruction):
        return None
    return cfg.block_starting_at(cfg.program.target_of(last)).block_id
