"""Protocol checks for CSB guest programs, as a forward abstract interpretation.

The paper's conditional-store-buffer protocol is a *program-order*
discipline (cf. Cohen & Schirmer's store-buffer reduction): lock acquires
pair with releases, membars fence device access away from lock traffic,
combining stores stay inside one aligned line window, and a conditional
flush is checked and retried on conflict.  Each rule is expressed over the
:class:`~repro.analysis.domain.ProtocolState` lattice and evaluated with
the worklist engine, so spin loops, backoff arms, and other diamonds are
handled soundly.

Rule ids reported here (severity ``error``):

``lock.double-acquire``
    A swap-acquire targets a lock this path already holds.
``lock.release-without-acquire``
    A store releases a lock variable no path has acquired.
``lock.nonzero-store``
    A plain store writes a non-zero constant into a lock variable.
``lock.held-at-halt``
    Some path reaches halt with a lock still (possibly) held.
``membar.missing-after-acquire``
    A device store follows a lock acquire with no membar in between.
``membar.missing-before-release``
    A lock release follows a device store with no membar in between
    (the paper's Figure 5 "wait" barrier).
``csb.flush-empty``
    A conditional flush executes with no combining store in flight.
``csb.store-outside-window``
    A combining store leaves the aligned line window opened by the
    current sequence.
``csb.flush-wrong-line``
    The conditional flush targets a different line than the open window.
``csb.expected-mismatch``
    The flush's expected hit count differs from the number of stores
    actually combined.
``csb.split-sequence``
    A plain-uncached store interleaves with an open combining sequence.
``csb.no-retry``
    A flush's success is never established on some path to halt (the
    conflict path does not loop back to a retry).
``csb.unflushed-window``
    Halt is reachable with combining stores still sitting in the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Set, Tuple

from repro.analysis.cfg import BasicBlock, ControlFlowGraph
from repro.analysis.dataflow import Analysis, Reporter
from repro.analysis.domain import (
    TOP,
    WINDOW_TOP,
    FlushCheck,
    FlushResult,
    LockCheck,
    ProtocolState,
    ScResult,
    SwapResult,
    Value,
    Window,
    fold_alu,
    join_states,
    LOCK_FREE,
    LOCK_HELD,
    LOCK_UNKNOWN,
)
from repro.isa.instructions import (
    AluInstruction,
    BlockStoreInstruction,
    BranchInstruction,
    CompareInstruction,
    HaltInstruction,
    Instruction,
    LoadInstruction,
    LoadLinkedInstruction,
    MembarInstruction,
    SetInstruction,
    StoreConditionalInstruction,
    StoreInstruction,
    SwapInstruction,
)
from repro.isa.registers import ICC, MASK64
from repro.memory.layout import AddressSpace, PageAttr, default_address_space


@dataclass(frozen=True)
class LintContext:
    """Environment assumptions the checker verifies programs against.

    ``line_size`` is the CSB combining-window size the program targets;
    ``space`` is the physical memory map used to classify constant
    addresses (defaults to the simulator's default layout).
    """

    line_size: int = 64
    space: Optional[AddressSpace] = None

    def resolve_space(self) -> AddressSpace:
        return self.space if self.space is not None else default_address_space()


class ProtocolAnalysis(Analysis[ProtocolState]):
    """The transfer function implementing every protocol rule.

    ``lock_addrs`` is the set of constant addresses observed as cached
    ``swap``/``sc`` targets; it grows monotonically while solving, and the
    driver re-solves until it is stable so release stores that appear
    *before* the first textual acquire are still classified correctly.
    """

    def __init__(
        self, context: LintContext, lock_addrs: Optional[Set[int]] = None
    ) -> None:
        self.context = context
        self.space = context.resolve_space()
        self.lock_addrs: Set[int] = set(lock_addrs or ())

    # -- Analysis interface ----------------------------------------------------

    def initial_state(self) -> ProtocolState:
        return ProtocolState()

    def join(self, left: ProtocolState, right: ProtocolState) -> ProtocolState:
        return join_states(left, right)

    def transfer(
        self,
        cfg: ControlFlowGraph,
        block: BasicBlock,
        state: ProtocolState,
        report: Optional[Reporter] = None,
    ) -> Dict[int, ProtocolState]:
        program = cfg.program
        for index, instruction in cfg.instructions(block):
            if isinstance(instruction, BranchInstruction):
                break  # always the last instruction of the block
            state = self._step(index, instruction, state, report)
        last = program[block.end - 1]
        successors: Dict[int, ProtocolState] = {}
        if isinstance(last, BranchInstruction):
            taken_state, fall_state = self._refine(last, state)
            taken = cfg.block_starting_at(program.target_of(last)).block_id
            self._merge_edge(successors, taken, taken_state)
            if last.op != "ba" and block.end < len(program):
                self._merge_edge(successors, block.block_id + 1, fall_state)
        elif isinstance(last, HaltInstruction):
            pass  # end-state findings were reported by _step
        elif block.end < len(program):
            successors[block.block_id + 1] = state
        return successors

    def _merge_edge(
        self,
        successors: Dict[int, ProtocolState],
        target: int,
        state: ProtocolState,
    ) -> None:
        if target in successors:  # branch whose target is the fall-through
            successors[target] = join_states(successors[target], state)
        else:
            successors[target] = state

    # -- per-instruction transfer ----------------------------------------------

    def _step(
        self,
        index: int,
        instruction: Instruction,
        state: ProtocolState,
        report: Optional[Reporter],
    ) -> ProtocolState:
        if isinstance(instruction, SetInstruction):
            return state.with_reg(instruction.rd, instruction.value & MASK64)
        if isinstance(instruction, AluInstruction):
            value = fold_alu(
                instruction.op,
                state.value_of(instruction.rs1),
                self._operand(instruction.operand2, state),
            )
            return state.with_reg(instruction.rd, value)
        if isinstance(instruction, CompareInstruction):
            return state.with_reg(ICC, self._compare(instruction, state))
        if isinstance(instruction, MembarInstruction):
            return replace(
                state, membar_after_acquire=True, membar_since_device_store=True
            )
        if isinstance(instruction, SwapInstruction):
            return self._swap(index, instruction, state, report)
        if isinstance(instruction, StoreConditionalInstruction):
            return self._store_conditional(index, instruction, state, report)
        if isinstance(instruction, LoadLinkedInstruction):
            return state.with_reg(instruction.rd, TOP)
        if isinstance(instruction, BlockStoreInstruction):
            return self._store(index, instruction, TOP, state, report)
        if isinstance(instruction, StoreInstruction):
            value = state.value_of(instruction.rs)
            return self._store(index, instruction, value, state, report)
        if isinstance(instruction, LoadInstruction):
            return state.with_reg(instruction.rd, TOP)
        if isinstance(instruction, HaltInstruction):
            self._check_halt(index, state, report)
            return state
        return state  # nop, mark

    # -- operand/address helpers -----------------------------------------------

    def _operand(self, operand, state: ProtocolState) -> Value:
        if isinstance(operand, int):
            return operand & MASK64
        return state.value_of(operand)

    def _address_of(self, instruction, state: ProtocolState) -> Optional[int]:
        base = state.value_of(instruction.base)
        offset = self._operand(instruction.offset, state)
        if isinstance(base, int) and isinstance(offset, int):
            return (base + offset) & MASK64
        return None

    def _classify(self, address: Optional[int]) -> Optional[PageAttr]:
        if address is None:
            return None
        region = self.space.region_at(address)
        return region.attr if region is not None else None

    def _line_base(self, address: int) -> int:
        return address & ~(self.context.line_size - 1)

    # -- compare / branch refinement -------------------------------------------

    def _compare(self, instruction: CompareInstruction, state: ProtocolState) -> Value:
        left = state.value_of(instruction.rs1)
        right = self._operand(instruction.operand2, state)
        for a, b in ((left, right), (right, left)):
            if isinstance(a, FlushResult) and isinstance(b, int):
                if a.expected is not None and b == a.expected and b != 0:
                    return FlushCheck(a.site, eq_means_success=True)
                if b == 0:
                    return FlushCheck(a.site, eq_means_success=False)
                return TOP
            if isinstance(a, SwapResult) and b == 0:
                return LockCheck(a.lock_addr)
        return TOP

    def _refine(
        self, branch: BranchInstruction, state: ProtocolState
    ) -> Tuple[ProtocolState, ProtocolState]:
        """(taken-edge state, fall-through state) after branch refinement."""
        if branch.op in ("be", "bne"):
            icc = state.value_of(ICC)
            eq_state, ne_state = self._split_on_equality(icc, state)
            if branch.op == "be":
                return eq_state, ne_state
            return ne_state, eq_state
        if branch.op in ("brz", "brnz"):
            assert branch.rs1 is not None
            value = state.value_of(branch.rs1)
            zero_state, nonzero_state = self._split_on_zero(value, state)
            if branch.op == "brz":
                return zero_state, nonzero_state
            return nonzero_state, zero_state
        return state, state

    def _split_on_equality(
        self, icc: Value, state: ProtocolState
    ) -> Tuple[ProtocolState, ProtocolState]:
        """(state-if-equal, state-if-not-equal)."""
        if isinstance(icc, FlushCheck):
            success = self._flush_success(icc.site, state)
            failure = state
            if icc.eq_means_success:
                return success, failure
            return failure, success
        if isinstance(icc, LockCheck):
            return (
                self._acquired(icc.lock_addr, state),
                self._not_acquired(icc.lock_addr, state),
            )
        return state, state

    def _split_on_zero(
        self, value: Value, state: ProtocolState
    ) -> Tuple[ProtocolState, ProtocolState]:
        """(state-if-zero, state-if-nonzero)."""
        if isinstance(value, SwapResult):
            # Old lock value zero <=> the lock was free <=> acquired.
            return (
                self._acquired(value.lock_addr, state),
                self._not_acquired(value.lock_addr, state),
            )
        if isinstance(value, ScResult):
            # sc result zero <=> the link broke <=> not acquired.
            return (
                self._not_acquired(value.lock_addr, state),
                self._acquired(value.lock_addr, state),
            )
        if isinstance(value, FlushResult):
            # Flush returns zero on conflict, the expected count on success.
            return state, self._flush_success(value.site, state)
        return state, state

    def _acquired(self, addr: int, state: ProtocolState) -> ProtocolState:
        return replace(
            state.with_lock(addr, LOCK_HELD), membar_after_acquire=False
        )

    def _not_acquired(self, addr: int, state: ProtocolState) -> ProtocolState:
        # A failed swap-acquire says someone holds the lock; it does not
        # change whether *this* path holds it (it may, on a double acquire).
        return state

    def _flush_success(self, site: int, state: ProtocolState) -> ProtocolState:
        return replace(state, pending=state.pending - {site})

    # -- memory instructions -----------------------------------------------------

    def _swap(
        self,
        index: int,
        instruction: SwapInstruction,
        state: ProtocolState,
        report: Optional[Reporter],
    ) -> ProtocolState:
        address = self._address_of(instruction, state)
        attr = self._classify(address)
        if attr is PageAttr.UNCACHED_COMBINING:
            return self._conditional_flush(index, instruction, address, state, report)
        if attr is PageAttr.CACHED and address is not None:
            pre = state.value_of(instruction.rd)
            if pre == 0:
                # Swapping in zero is an atomic release, not an acquire.
                state = self._release(index, address, state, report)
                return state.with_reg(instruction.rd, TOP)
            self.lock_addrs.add(address)
            if state.lock_state(address) == LOCK_HELD and report is not None:
                report(
                    "lock.double-acquire",
                    index,
                    f"acquire of lock 0x{address:x} while already held",
                    "release the lock before re-acquiring; a swap spin "
                    "loop on a held lock never exits",
                )
            return state.with_reg(instruction.rd, SwapResult(address))
        if attr is PageAttr.UNCACHED:
            state = self._plain_uncached_access(index, state, report)
        return state.with_reg(instruction.rd, TOP)

    def _store_conditional(
        self,
        index: int,
        instruction: StoreConditionalInstruction,
        state: ProtocolState,
        report: Optional[Reporter],
    ) -> ProtocolState:
        address = self._address_of(instruction, state)
        attr = self._classify(address)
        if attr is PageAttr.CACHED and address is not None:
            stored = state.value_of(instruction.rs)
            if isinstance(stored, int) and stored != 0:
                self.lock_addrs.add(address)
                return state.with_reg(instruction.rd, ScResult(address))
            if stored == 0 and address in self.lock_addrs:
                state = self._release(index, address, state, report)
        elif attr is PageAttr.UNCACHED:
            state = self._plain_uncached_access(index, state, report)
        return state.with_reg(instruction.rd, TOP)

    def _store(
        self,
        index: int,
        instruction,
        value: Value,
        state: ProtocolState,
        report: Optional[Reporter],
    ) -> ProtocolState:
        address = self._address_of(instruction, state)
        attr = self._classify(address)
        if attr is PageAttr.UNCACHED_COMBINING:
            return self._combining_store(index, address, state, report)
        if attr is PageAttr.UNCACHED:
            return self._plain_uncached_access(index, state, report)
        if attr is PageAttr.CACHED and address in self.lock_addrs:
            if isinstance(value, int) and value != 0:
                if report is not None:
                    report(
                        "lock.nonzero-store",
                        index,
                        f"store of non-zero constant {value} into lock "
                        f"0x{address:x}",
                        "only the acquire swap may write non-zero into a "
                        "lock variable; a release stores zero",
                    )
                return state
            assert address is not None
            return self._release(index, address, state, report)
        return state

    def _release(
        self,
        index: int,
        address: int,
        state: ProtocolState,
        report: Optional[Reporter],
    ) -> ProtocolState:
        if report is not None:
            if state.lock_state(address) == LOCK_FREE:
                report(
                    "lock.release-without-acquire",
                    index,
                    f"release of lock 0x{address:x} that no path has acquired",
                    "acquire the lock with a checked swap before releasing",
                )
            if not state.membar_since_device_store:
                report(
                    "membar.missing-before-release",
                    index,
                    f"release of lock 0x{address:x} without a membar after "
                    "the last device store",
                    "insert a membar so the release is observed only after "
                    "the last uncached transaction left the buffer "
                    "(paper Figure 5)",
                )
        return state.with_lock(address, LOCK_FREE)

    def _plain_uncached_access(
        self, index: int, state: ProtocolState, report: Optional[Reporter]
    ) -> ProtocolState:
        if report is not None:
            if isinstance(state.window, Window):
                report(
                    "csb.split-sequence",
                    index,
                    "plain-uncached store interleaved with an open "
                    "combining sequence",
                    "finish the combining sequence with its conditional "
                    "flush before touching non-combining device space",
                )
            if state.any_lock_held() and not state.membar_after_acquire:
                report(
                    "membar.missing-after-acquire",
                    index,
                    "device store under a lock with no membar since the "
                    "acquire",
                    "place a membar between the lock acquire and the first "
                    "uncached device access",
                )
        return replace(state, membar_since_device_store=False)

    def _combining_store(
        self,
        index: int,
        address: Optional[int],
        state: ProtocolState,
        report: Optional[Reporter],
    ) -> ProtocolState:
        window = state.window
        if address is None:
            return replace(state, window=WINDOW_TOP)
        line = self._line_base(address)
        if window is None:
            return replace(state, window=Window(line, 1, index))
        if isinstance(window, Window):
            if window.base == line:
                return replace(
                    state, window=Window(line, window.count + 1, window.opened_at)
                )
            if report is not None:
                report(
                    "csb.store-outside-window",
                    index,
                    f"combining store to line 0x{line:x} while the window "
                    f"at 0x{window.base:x} is open",
                    "keep a combining sequence inside one aligned "
                    f"{self.context.line_size}-byte line and flush it "
                    "before starting the next",
                )
            return replace(state, window=Window(line, 1, index))
        return state  # WINDOW_TOP stays unknown

    def _conditional_flush(
        self,
        index: int,
        instruction: SwapInstruction,
        address: Optional[int],
        state: ProtocolState,
        report: Optional[Reporter],
    ) -> ProtocolState:
        window = state.window
        expected = state.value_of(instruction.rd)
        if report is not None:
            if window is None:
                report(
                    "csb.flush-empty",
                    index,
                    "conditional flush with no combining store in flight",
                    "issue the combining stores before the flush; an empty "
                    "flush always reports a conflict",
                )
            elif isinstance(window, Window):
                if address is not None and self._line_base(address) != window.base:
                    report(
                        "csb.flush-wrong-line",
                        index,
                        f"flush targets 0x{address:x} but the open window "
                        f"is at 0x{window.base:x}",
                        "flush the same line the combining stores wrote",
                    )
                if isinstance(expected, int) and expected != window.count:
                    report(
                        "csb.expected-mismatch",
                        index,
                        f"flush expects hit count {expected} but the window "
                        f"holds {window.count} store(s)",
                        "the swap source must equal the number of combining "
                        "stores since the window opened",
                    )
        expected_const = expected if isinstance(expected, int) else None
        state = replace(state, window=None, pending=state.pending | {index})
        return state.with_reg(instruction.rd, FlushResult(index, expected_const))

    # -- end-state checks --------------------------------------------------------

    def _check_halt(
        self, index: int, state: ProtocolState, report: Optional[Reporter]
    ) -> None:
        if report is None:
            return
        for address in sorted(state.locks):
            lock_state = state.locks[address]
            if lock_state in (LOCK_HELD, LOCK_UNKNOWN):
                qualifier = "" if lock_state == LOCK_HELD else "may be "
                report(
                    "lock.held-at-halt",
                    index,
                    f"lock 0x{address:x} {qualifier}still held at halt",
                    "release the lock on every path, including error paths",
                )
        for site in sorted(state.pending):
            report(
                "csb.no-retry",
                site,
                "conditional flush success is never established on some "
                f"path to halt (instruction {index})",
                "check the flush result and loop back to re-issue the "
                "stores on conflict (paper §3.2 retry idiom)",
            )
        if isinstance(state.window, Window):
            report(
                "csb.unflushed-window",
                state.window.opened_at,
                "combining stores are never flushed on some path to halt "
                f"(instruction {index})",
                "commit the sequence with a conditional flush before halt",
            )
