"""Registry of every shipped workload/program builder for the lint gate.

``iter_lint_targets`` enumerates each kernel generator across a sweep of
its parameter space — the same spans the evaluation experiments and the
examples use — paired with the :class:`~repro.analysis.protocol.LintContext`
(combining-line size, address map) the program is generated for.  CI runs
``csb-figures lint`` over this registry and fails on any finding, so a
protocol regression in a generator is caught before a single simulation
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.analysis.protocol import LintContext
from repro.memory.layout import (
    DRAM_BASE,
    IO_COMBINING_BASE,
    IO_UNCACHED_BASE,
)
from repro.workloads.blockstore import (
    blockstore_kernel,
    blockstore_marshalled_kernel,
)
from repro.workloads.contention import contending_csb_kernel
from repro.workloads.lockbench import csb_access_kernel, locked_access_kernel
from repro.workloads.messaging import (
    csb_send_kernel,
    dma_send_kernel,
    pio_send_kernel,
)
from repro.workloads.pingpong import SEND_METHODS, ping_kernel, pong_kernel
from repro.workloads.smp import smp_csb_kernel, smp_locked_kernel
from repro.workloads.storebw import (
    TRANSFER_SIZES,
    store_kernel_csb,
    store_kernel_uncached,
)

#: CSB line sizes the figure panels sweep the store-bandwidth kernel over.
STOREBW_LINE_SIZES = (64, 128)

#: Doubleword counts of the Figure 5 atomic-access sweep (1..8).
ACCESS_DOUBLEWORDS = tuple(range(1, 9))

#: Message payloads (bytes) used by the messaging examples.
MESSAGE_PAYLOADS = (8, 16, 32, 64)

#: DMA engine register block (inside plain-uncached device space).
DMA_BASE = IO_UNCACHED_BASE + 0x10000

#: DMA source buffer (cached DRAM).
DMA_SRC = DRAM_BASE + 0x4000


@dataclass(frozen=True)
class LintTarget:
    """One program to lint: a name, its assembly text, and its context."""

    name: str
    source: str
    context: LintContext = field(default_factory=LintContext)


@dataclass(frozen=True)
class LintGroup:
    """Programs that run together in one SMP experiment.

    Group rules (``smp.*``, see :mod:`repro.analysis.smp`) reason across
    the programs of one group — e.g. a lock one core takes and another
    releases — which no single-program check can see.
    """

    name: str
    targets: tuple


def _storebw_targets() -> Iterator[LintTarget]:
    for size in TRANSFER_SIZES:
        yield LintTarget(
            f"storebw-uncached-{size}B", store_kernel_uncached(size)
        )
    for line_size in STOREBW_LINE_SIZES:
        context = LintContext(line_size=line_size)
        for size in TRANSFER_SIZES:
            for interleave in (False, True):
                suffix = "-interleaved" if interleave else ""
                yield LintTarget(
                    f"storebw-csb-{size}B-line{line_size}{suffix}",
                    store_kernel_csb(size, line_size, interleave=interleave),
                    context,
                )


def _lockbench_targets() -> Iterator[LintTarget]:
    for n in ACCESS_DOUBLEWORDS:
        yield LintTarget(f"locked-access-{n}dw", locked_access_kernel(n))
        yield LintTarget(f"csb-access-{n}dw", csb_access_kernel(n))


def _llsc_targets() -> Iterator[LintTarget]:
    from repro.evaluation.sync_mechanisms import llsc_access_kernel

    for n in (2, 4, 8):
        yield LintTarget(f"llsc-access-{n}dw", llsc_access_kernel(n))


def _messaging_targets() -> Iterator[LintTarget]:
    for payload in MESSAGE_PAYLOADS:
        yield LintTarget(
            f"pio-send-{payload}B",
            pio_send_kernel(payload, IO_UNCACHED_BASE),
        )
        yield LintTarget(
            f"csb-send-{payload}B",
            csb_send_kernel(payload, IO_COMBINING_BASE),
        )
    for payload in (8, 64, 256):
        yield LintTarget(
            f"dma-send-{payload}B",
            dma_send_kernel(DMA_SRC, payload, DMA_BASE),
        )


def _contention_targets() -> Iterator[LintTarget]:
    for backoff in (False, True):
        for n in (1, 4, 8):
            suffix = "-backoff" if backoff else ""
            yield LintTarget(
                f"contention-{n}dw{suffix}",
                contending_csb_kernel(
                    3, IO_COMBINING_BASE, n_doublewords=n, backoff=backoff
                ),
            )


def _pingpong_targets() -> Iterator[LintTarget]:
    for method in SEND_METHODS:
        for payload in (1, 4, 8):
            yield LintTarget(
                f"ping-{method}-{payload}dw",
                ping_kernel(method, payload, IO_UNCACHED_BASE, IO_COMBINING_BASE),
            )
            yield LintTarget(
                f"pong-{method}-{payload}dw",
                pong_kernel(method, payload, IO_UNCACHED_BASE, IO_COMBINING_BASE),
            )


def _blockstore_targets() -> Iterator[LintTarget]:
    yield LintTarget("blockstore", blockstore_kernel())
    yield LintTarget("blockstore-marshalled", blockstore_marshalled_kernel())


def _smp_targets() -> Iterator[LintTarget]:
    """The SMP contention kernels, across the per-core parameterizations
    the smp-contention experiment actually generates (cores 0, 1, 7 of
    an 8-core run cover the no-stagger and staggered/backoff shapes)."""
    for n in (1, 4, 8):
        yield LintTarget(f"smp-locked-{n}dw", smp_locked_kernel(3, n_doublewords=n))
    for core in (0, 1, 7):
        yield LintTarget(
            f"smp-csb-core{core}",
            smp_csb_kernel(
                3,
                IO_COMBINING_BASE,
                stagger=core * 40,
                backoff_base=2 * core + 1,
                backoff_cap=64 * (core + 1),
            ),
        )


def _counterexample_targets() -> Iterator[LintTarget]:
    """Per-core programs of the promoted model-checker counterexamples."""
    from repro.workloads.counterexamples import COUNTEREXAMPLES

    for workload in COUNTEREXAMPLES:
        for name, source in workload.sources():
            yield LintTarget(name, source)


def iter_lint_targets() -> Iterator[LintTarget]:
    """Every shipped kernel, across its parameter space, in stable order."""
    yield from _storebw_targets()
    yield from _lockbench_targets()
    yield from _llsc_targets()
    yield from _messaging_targets()
    yield from _contention_targets()
    yield from _pingpong_targets()
    yield from _blockstore_targets()
    yield from _smp_targets()
    yield from _counterexample_targets()


def lint_targets() -> List[LintTarget]:
    return list(iter_lint_targets())


def iter_lint_groups() -> Iterator[LintGroup]:
    """Programs that execute together, for the cross-program group rules.

    Covers the SMP experiments (every core of one run) and each promoted
    counterexample workload (its per-core litmus programs).
    """
    for n in (1, 4, 8):
        source = smp_locked_kernel(3, n_doublewords=n)
        yield LintGroup(
            f"smp-locked-{n}dw",
            tuple(
                LintTarget(f"smp-locked-{n}dw-core{core}", source)
                for core in range(2)
            ),
        )
    yield LintGroup(
        "smp-csb",
        tuple(
            LintTarget(
                f"smp-csb-core{core}",
                smp_csb_kernel(
                    3,
                    IO_COMBINING_BASE,
                    stagger=core * 40,
                    backoff_base=2 * core + 1,
                    backoff_cap=64 * (core + 1),
                ),
            )
            for core in (0, 1, 7)
        ),
    )
    from repro.workloads.counterexamples import COUNTEREXAMPLES

    for workload in COUNTEREXAMPLES:
        yield LintGroup(
            workload.name,
            tuple(
                LintTarget(name, source) for name, source in workload.sources()
            ),
        )


def lint_groups() -> List[LintGroup]:
    return list(iter_lint_groups())
