"""Sparse byte-addressable backing store.

Holds the functional contents of the simulated physical address space.  The
store is sparse (page-granular ``bytearray`` chunks allocated on first touch)
so device apertures at high addresses cost nothing.  Integers are stored
big-endian, matching SPARC.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import MemoryError_

_CHUNK_BITS = 12
_CHUNK_SIZE = 1 << _CHUNK_BITS
_CHUNK_MASK = _CHUNK_SIZE - 1


class BackingStore:
    """Functional memory contents, independent of any timing model."""

    def __init__(self) -> None:
        self._chunks: Dict[int, bytearray] = {}

    def _chunk(self, address: int) -> bytearray:
        key = address >> _CHUNK_BITS
        chunk = self._chunks.get(key)
        if chunk is None:
            chunk = bytearray(_CHUNK_SIZE)
            self._chunks[key] = chunk
        return chunk

    def read_bytes(self, address: int, length: int) -> bytes:
        if address < 0 or length < 0:
            raise MemoryError_(f"bad read [{address:#x}, +{length}]")
        out = bytearray(length)
        cursor = 0
        while cursor < length:
            addr = address + cursor
            offset = addr & _CHUNK_MASK
            take = min(length - cursor, _CHUNK_SIZE - offset)
            chunk = self._chunks.get(addr >> _CHUNK_BITS)
            if chunk is not None:
                out[cursor : cursor + take] = chunk[offset : offset + take]
            cursor += take
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        if address < 0:
            raise MemoryError_(f"bad write at {address:#x}")
        cursor = 0
        length = len(data)
        while cursor < length:
            addr = address + cursor
            offset = addr & _CHUNK_MASK
            take = min(length - cursor, _CHUNK_SIZE - offset)
            self._chunk(addr)[offset : offset + take] = data[cursor : cursor + take]
            cursor += take

    def read_int(self, address: int, size: int) -> int:
        """Read a ``size``-byte big-endian unsigned integer."""
        return int.from_bytes(self.read_bytes(address, size), "big")

    def write_int(self, address: int, value: int, size: int) -> None:
        """Write a ``size``-byte big-endian unsigned integer (value wraps)."""
        value &= (1 << (8 * size)) - 1
        self.write_bytes(address, value.to_bytes(size, "big"))

    def fill(self, address: int, length: int, byte: int = 0) -> None:
        """Set a byte range to a constant value."""
        self.write_bytes(address, bytes([byte & 0xFF]) * length)

    @property
    def touched_bytes(self) -> int:
        """Bytes of host memory allocated so far (for tests/diagnostics)."""
        return len(self._chunks) * _CHUNK_SIZE

    def snapshot(self) -> Dict[int, bytes]:
        """Canonical image of all nonzero memory: chunk base address ->
        chunk bytes.  All-zero chunks are omitted, so two stores that
        merely *touched* different addresses but hold identical contents
        compare equal — the final-memory equivalence the differential
        harness asserts."""
        return {
            key << _CHUNK_BITS: bytes(chunk)
            for key, chunk in sorted(self._chunks.items())
            if any(chunk)
        }
