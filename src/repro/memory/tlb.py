"""A small fully-associative TLB caching page attributes.

The paper's CSB enable bit lives in the page-table entry (§3.1), so every
memory operation consults the page attribute.  Modeling the TLB keeps that
path explicit and lets tests assert that attribute lookups behave like the
hardware would (LRU replacement, per-page granularity).  TLB refills are
assumed free — the microbenchmark kernels touch a handful of pages, so a
miss-cost model would only add noise.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import ConfigError
from repro.memory.layout import AddressSpace, PageAttr


class AttributeTLB:
    """LRU cache of page -> :class:`PageAttr` translations."""

    def __init__(self, space: AddressSpace, entries: int = 64) -> None:
        if entries < 1:
            raise ConfigError("TLB needs at least one entry")
        self._space = space
        self._entries = entries
        self._cache: "OrderedDict[int, PageAttr]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def attribute_of(self, address: int) -> PageAttr:
        page = address // self._space.page_size
        attr = self._cache.get(page)
        if attr is not None:
            self.hits += 1
            self._cache.move_to_end(page)
            return attr
        self.misses += 1
        attr = self._space.attribute_of(address)
        self._cache[page] = attr
        if len(self._cache) > self._entries:
            self._cache.popitem(last=False)
        return attr

    def flush(self) -> None:
        """Invalidate all entries (e.g. after remapping a region)."""
        self._cache.clear()

    @property
    def occupancy(self) -> int:
        return len(self._cache)
