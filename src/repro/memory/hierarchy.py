"""Two-level cache hierarchy with a fixed main-memory miss latency.

Latency model (all in CPU cycles):

* L1 hit: ``l1.hit_latency``
* L1 miss, L2 hit: ``l1.hit_latency + l2.hit_latency``
* miss everywhere: ``miss_latency`` total (the paper's Figure 5 experiment
  fixes this at 100 cycles, "166 ns on a 600 MHz processor")

Cached refills do not occupy the modeled system bus.  The paper's
microbenchmarks are constructed so that cached traffic (the lock variable)
and the uncached store stream barely overlap, and the fixed 100-cycle miss
cost is exactly how the paper itself characterizes the miss; modeling refill
occupancy would change nothing the figures measure.  This substitution is
recorded in DESIGN.md.

Atomic ``swap`` on cached space is a read-modify-write of one line: it costs
one access latency and leaves the line dirty, matching the paper's statement
that a lock acquire whose line is resident adds ~8 cycles total overhead.
"""

from __future__ import annotations

from repro.common.config import MemoryHierarchyConfig
from repro.common.errors import MemoryError_
from repro.memory.backing import BackingStore
from repro.memory.cache import CacheLevel


class MemoryHierarchy:
    """L1 + L2 over main memory; functional data lives in ``backing``."""

    def __init__(self, config: MemoryHierarchyConfig, backing: BackingStore) -> None:
        self.config = config
        self.backing = backing
        self.l1 = CacheLevel(config.l1, "L1")
        self.l2 = CacheLevel(config.l2, "L2")
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        self.memory_accesses = 0
        #: Called with the missing address on every main-memory access
        #: (wired to a RefillEngine when refills occupy the bus).
        self.refill_hook = None

    def access_latency(self, address: int, is_write: bool) -> int:
        """Perform the timing side of one cached access; returns CPU cycles.

        Updates cache state (LRU, dirty bits, fills on miss).
        """
        if self.l1.lookup(address, is_write):
            return self.config.l1.hit_latency
        if self.l2.lookup(address, is_write=False):
            # Allocate into L1; the dirty bit lives at the level written.
            self.l1.fill(address, dirty=is_write)
            if self.events is not None:
                from repro.observability.events import CacheMiss

                self.events.publish(CacheMiss(address, "l1"))
            return self.config.l1.hit_latency + self.config.l2.hit_latency
        if self.events is not None:
            from repro.observability.events import CacheMiss

            self.events.publish(CacheMiss(address, "l2"))
        self.memory_accesses += 1
        if self.refill_hook is not None:
            self.refill_hook(address)
        self.l2.fill(address)
        self.l1.fill(address, dirty=is_write)
        return self.config.miss_latency

    # -- functional access ---------------------------------------------------

    def read(self, address: int, size: int) -> int:
        self._check(address, size)
        return self.backing.read_int(address, size)

    def write(self, address: int, value: int, size: int) -> None:
        self._check(address, size)
        self.backing.write_int(address, value, size)

    def _check(self, address: int, size: int) -> None:
        if size <= 0:
            raise MemoryError_(f"bad access size {size}")
        line = self.config.line_size
        if address // line != (address + size - 1) // line:
            raise MemoryError_(
                f"cached access [{address:#x}, +{size}] crosses a line boundary"
            )

    # -- test/benchmark helpers ----------------------------------------------

    def warm(self, address: int) -> None:
        """Install a line in both levels (clean), e.g. a warm lock variable."""
        self.l2.fill(address)
        self.l1.fill(address)

    def evict(self, address: int) -> None:
        """Remove a line everywhere, forcing the next access to miss fully."""
        self.l1.invalidate(address)
        self.l2.invalidate(address)
