"""Non-blocking, write-allocate data cache with an MSHR file.

This is the first-class D-cache behind :class:`~repro.common.config.MemoryConfig`
(enabled per-system, one instance per core).  Like
:class:`~repro.memory.cache.CacheLevel` it is a presence/latency model — the
functional bytes stay in the :class:`~repro.memory.backing.BackingStore` — but
unlike the blocking hierarchy it resolves misses asynchronously:

* A **hit** completes in ``hit_latency`` CPU cycles.
* A **primary miss** allocates an MSHR whose refill lands ``miss_latency``
  cycles later; the requesting operation sleeps until then, while the core
  keeps issuing other work (the non-blocking property).
* A **secondary miss** to a line with an MSHR outstanding merges into it and
  wakes at the same refill time (no new memory traffic).
* When all MSHRs are busy, further misses stall at issue until an entry
  frees (``can_accept`` is the poll; stalled polls are counted).

Refills install at their precomputed ready time via the lazy :meth:`drain`
walk — there is no per-cycle cache tick.  Evicting a dirty victim under the
write-back policy raises ``writeback_hook`` (wired to the bus write-back
engine when ``MemoryConfig.bus_traffic`` is on); a primary miss raises
``refill_hook`` (wired to the shared refill engine, priority class 0).

Coherence is deliberately minimal — an invalidate protocol, not MESI: a
store makes the writer's line dirty and drops the line from every peer
cache, and a CSB flush drops the flushed span from *all* caches
(:meth:`invalidate_span`), which keeps cached copies of combining-space
lines coherent with CSB bursts.  Invalidations discard dirty state without
a write-back: the functional data plane is shared, so only timing is
approximated, never values.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.bitops import block_base
from repro.common.config import MemoryConfig


class DLineState(enum.Enum):
    """State of a resident line; absent lines are implicitly invalid."""

    CLEAN = "clean"
    DIRTY = "dirty"


class MSHR:
    """One miss-status holding register: an outstanding line refill."""

    __slots__ = ("line", "ready_at", "dirty", "merges")

    def __init__(self, line: int, ready_at: int, dirty: bool) -> None:
        self.line = line
        self.ready_at = ready_at
        #: Install the line dirty (some merged access was a store).
        self.dirty = dirty
        self.merges = 0


class DataCache:
    """Per-core non-blocking D-cache (set-associative, LRU, write-allocate).

    The caller drives it with three calls:

    * :meth:`can_accept` — may this access enter the cache *now*?  False
      only on MSHR capacity exhaustion (the capacity stall).
    * :meth:`access` — perform the timing access; returns the CPU cycle the
      value is ready (hit) or the refill lands (miss).
    * :meth:`drain` — retire refills whose time has come (called lazily
      before any state-dependent operation; idempotent).
    """

    def __init__(self, config: MemoryConfig, name: str = "dcache") -> None:
        self.config = config
        self.name = name
        self._sets: List["OrderedDict[int, DLineState]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        #: Outstanding refills, keyed by line base address.  Insertion
        #: order equals allocation order equals ready order (the miss
        #: latency is constant), so :meth:`drain` pops from the front.
        self._mshrs: "OrderedDict[int, MSHR]" = OrderedDict()
        #: Peer caches (other cores) for the invalidate-on-write rule.
        self.peers: List["DataCache"] = []
        #: Called with the line address on every primary miss (bus refill
        #: traffic); None means refills complete silently at fixed latency.
        self.refill_hook: Optional[Callable[[int], None]] = None
        #: Called with the victim line address when a dirty line is
        #: evicted; None means write-backs complete silently.
        self.writeback_hook: Optional[Callable[[int], None]] = None
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        self.hits = 0
        self.misses = 0
        self.mshr_merges = 0
        self.mshr_stall_cycles = 0
        self.writebacks = 0
        self.writethroughs = 0
        self.coherence_invalidations = 0
        self.csb_invalidations = 0

    # -- address helpers -----------------------------------------------------

    def _set_for(self, address: int) -> "OrderedDict[int, DLineState]":
        line = address // self.config.line_size
        return self._sets[line % self.config.num_sets]

    def _line(self, address: int) -> int:
        return block_base(address, self.config.line_size)

    # -- the access protocol -------------------------------------------------

    def can_accept(self, address: int, now: int) -> bool:
        """May an access to ``address`` enter the cache at cycle ``now``?

        The only refusal is MSHR capacity: the access would be a primary
        miss and every MSHR is busy.  A refused poll counts one
        ``mshr_stall_cycles`` (the caller polls once per cycle).
        """
        self.drain(now)
        line = self._line(address)
        if line in self._set_for(address) or line in self._mshrs:
            return True
        if len(self._mshrs) < self.config.mshrs:
            return True
        self.mshr_stall_cycles += 1
        return False

    def access(self, address: int, is_write: bool, now: int) -> int:
        """Perform the timing side of one access; returns the CPU cycle at
        which it completes.  Only call after :meth:`can_accept` said yes.

        Updates LRU/dirty state, allocates or merges MSHRs, and publishes
        coherence invalidations to peer caches on writes.
        """
        self.drain(now)
        cache_set = self._set_for(address)
        line = self._line(address)
        writethrough = self.config.write_policy == "writethrough"
        if line in cache_set:
            self.hits += 1
            cache_set.move_to_end(line)
            if is_write:
                self._invalidate_peers(line)
                if writethrough:
                    # No write buffer modeled: the store also pays the
                    # memory write before the core may proceed.
                    self.writethroughs += 1
                    return now + self.config.miss_latency
                cache_set[line] = DLineState.DIRTY
            return now + self.config.hit_latency
        if is_write and writethrough:
            # Write-through is no-write-allocate: the store goes straight
            # to memory without touching MSHRs or residency.
            self.misses += 1
            self.writethroughs += 1
            self._invalidate_peers(line)
            return now + self.config.miss_latency
        mshr = self._mshrs.get(line)
        if mshr is not None:
            # Secondary miss: piggyback on the outstanding refill.
            self.mshr_merges += 1
            mshr.merges += 1
            if is_write:
                mshr.dirty = True
            return mshr.ready_at
        self.misses += 1
        mshr = MSHR(line, now + self.config.miss_latency, dirty=is_write)
        self._mshrs[line] = mshr
        if self.refill_hook is not None:
            self.refill_hook(line)
        if self.events is not None:
            from repro.observability.events import CacheMiss

            self.events.publish(CacheMiss(address, self.name))
        return mshr.ready_at

    def drain(self, now: int) -> None:
        """Install every refill whose ready time has passed (in order)."""
        while self._mshrs:
            line, mshr = next(iter(self._mshrs.items()))
            if mshr.ready_at > now:
                break
            del self._mshrs[line]
            self._install(line, mshr.dirty)
            if mshr.dirty:
                self._invalidate_peers(line)

    def _install(self, line: int, dirty: bool) -> None:
        cache_set = self._set_for(line)
        if line not in cache_set and len(cache_set) >= self.config.associativity:
            victim, state = cache_set.popitem(last=False)
            if state is DLineState.DIRTY:
                self.writebacks += 1
                if self.writeback_hook is not None:
                    self.writeback_hook(victim)
                if self.events is not None:
                    from repro.observability.events import CacheWriteback

                    self.events.publish(CacheWriteback(victim, self.name))
        cache_set[line] = DLineState.DIRTY if dirty else DLineState.CLEAN
        cache_set.move_to_end(line)
        if self.events is not None:
            from repro.observability.events import CacheRefill

            self.events.publish(CacheRefill(line, self.name))

    # -- coherence -----------------------------------------------------------

    def _invalidate_peers(self, line: int) -> None:
        for peer in self.peers:
            peer.snoop_invalidate(line)

    def snoop_invalidate(self, line: int) -> None:
        """Drop ``line`` because another agent wrote it (no write-back:
        the functional data plane is shared)."""
        cache_set = self._set_for(line)
        if cache_set.pop(line, None) is not None:
            self.coherence_invalidations += 1

    def invalidate_span(self, base: int, size: int) -> None:
        """Drop every line overlapping ``[base, base+size)`` — the
        invalidate-on-CSB-write coherence rule for combining-space lines."""
        line = self._line(base)
        end = base + max(size, 1)
        while line < end:
            cache_set = self._set_for(line)
            if cache_set.pop(line, None) is not None:
                self.csb_invalidations += 1
            line += self.config.line_size

    # -- introspection / helpers ---------------------------------------------

    def probe(self, address: int) -> bool:
        """Non-destructive presence check (no LRU update, no counters)."""
        return self._line(address) in self._set_for(address)

    def warm(self, address: int) -> None:
        """Install the line clean without counting an access."""
        self._install(self._line(address), dirty=False)

    def quiescent(self) -> bool:
        """True when no refill is outstanding."""
        return not self._mshrs

    @property
    def outstanding(self) -> int:
        return len(self._mshrs)

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def dirty_lines(self) -> List[int]:
        """Addresses of all dirty lines (diagnostics and invariant tests)."""
        return [
            line
            for cache_set in self._sets
            for line, state in cache_set.items()
            if state is DLineState.DIRTY
        ]

    def counters(self) -> Dict[str, int]:
        """Counter snapshot for metrics (stable key order)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "mshr_merges": self.mshr_merges,
            "mshr_stall_cycles": self.mshr_stall_cycles,
            "writebacks": self.writebacks,
            "writethroughs": self.writethroughs,
            "coherence_invalidations": self.coherence_invalidations,
            "csb_invalidations": self.csb_invalidations,
        }


def wire_peers(caches: List[DataCache]) -> None:
    """Make every cache snoop every other (the SMP invalidate mesh)."""
    for cache in caches:
        cache.peers = [peer for peer in caches if peer is not cache]
