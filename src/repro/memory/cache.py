"""Set-associative write-back cache model.

This is a presence/latency model: the functional data lives in the
:class:`~repro.memory.backing.BackingStore`, while the cache tracks which
lines are resident and dirty so that hit/miss latencies (and therefore the
paper's Figure 5 lock-overhead numbers) come out right.  Replacement is LRU
within a set; the write policy is write-back, write-allocate.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import List, Optional

from repro.common.bitops import block_base
from repro.common.config import CacheConfig


class LineState(enum.Enum):
    """State of a resident line; absent lines are implicitly invalid."""

    CLEAN = "clean"
    DIRTY = "dirty"


class CacheLevel:
    """One level of the hierarchy."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._sets: List["OrderedDict[int, LineState]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _set_for(self, address: int) -> "OrderedDict[int, LineState]":
        line = address // self.config.line_size
        return self._sets[line % self.config.num_sets]

    def _tag(self, address: int) -> int:
        return block_base(address, self.config.line_size)

    def probe(self, address: int) -> bool:
        """Non-destructive presence check (no LRU update, no counters)."""
        return self._tag(address) in self._set_for(address)

    def lookup(self, address: int, is_write: bool) -> bool:
        """Access the line: returns True on hit, updating LRU and counters.

        A write hit marks the line dirty (write-back policy).
        """
        cache_set = self._set_for(address)
        tag = self._tag(address)
        if tag in cache_set:
            self.hits += 1
            cache_set.move_to_end(tag)
            if is_write:
                cache_set[tag] = LineState.DIRTY
            return True
        self.misses += 1
        return False

    def fill(self, address: int, dirty: bool = False) -> Optional[int]:
        """Bring the line in (write-allocate); returns the address of an
        evicted dirty line, or None."""
        cache_set = self._set_for(address)
        tag = self._tag(address)
        evicted: Optional[int] = None
        if tag not in cache_set and len(cache_set) >= self.config.associativity:
            victim_tag, victim_state = cache_set.popitem(last=False)
            if victim_state is LineState.DIRTY:
                self.writebacks += 1
                evicted = victim_tag
        state = LineState.DIRTY if dirty else cache_set.get(tag, LineState.CLEAN)
        if dirty:
            state = LineState.DIRTY
        cache_set[tag] = state
        cache_set.move_to_end(tag)
        return evicted

    def invalidate(self, address: int) -> None:
        """Drop the line if resident (used to create cold-miss scenarios)."""
        cache_set = self._set_for(address)
        cache_set.pop(self._tag(address), None)

    def invalidate_all(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def dirty_lines(self) -> List[int]:
        """Addresses of all dirty lines (diagnostics and invariant tests)."""
        return [
            tag
            for cache_set in self._sets
            for tag, state in cache_set.items()
            if state is LineState.DIRTY
        ]

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
