"""Memory system: byte-addressable backing store, address-space layout with
per-page attributes (cached / uncached / uncached-combining), a TLB-like
attribute cache, and a two-level write-back cache hierarchy.

The CSB is enabled purely through the memory map (paper §3.1): stores whose
page attribute is ``UNCACHED_COMBINING`` are routed to the conditional store
buffer, ordinary ``UNCACHED`` accesses go to the conventional uncached buffer,
and ``CACHED`` accesses go through the cache hierarchy.
"""

from repro.memory.backing import BackingStore
from repro.memory.layout import (
    AddressSpace,
    PageAttr,
    Region,
    DEFAULT_PAGE_SIZE,
    DRAM_BASE,
    DRAM_SIZE,
    IO_UNCACHED_BASE,
    IO_UNCACHED_SIZE,
    IO_COMBINING_BASE,
    IO_COMBINING_SIZE,
    default_address_space,
)
from repro.memory.tlb import AttributeTLB
from repro.memory.cache import CacheLevel, LineState
from repro.memory.dcache import MSHR, DataCache, DLineState, wire_peers
from repro.memory.hierarchy import MemoryHierarchy

__all__ = [
    "AddressSpace",
    "AttributeTLB",
    "BackingStore",
    "CacheLevel",
    "DataCache",
    "DLineState",
    "MSHR",
    "DEFAULT_PAGE_SIZE",
    "DRAM_BASE",
    "DRAM_SIZE",
    "IO_COMBINING_BASE",
    "IO_COMBINING_SIZE",
    "IO_UNCACHED_BASE",
    "IO_UNCACHED_SIZE",
    "LineState",
    "MemoryHierarchy",
    "PageAttr",
    "Region",
    "default_address_space",
    "wire_peers",
]
