"""Address-space layout and per-page memory attributes.

The paper enables the CSB through "existing memory mapping hardware" (§3.1):
a page-table attribute marks an address range as *uncached combining*, the
same way the R10000 marks uncached-accelerated pages.  This module models the
physical memory map as a set of regions, each carrying one of three
attributes:

``CACHED``
    Ordinary memory, goes through the cache hierarchy.
``UNCACHED``
    Device space with in-order exactly-once semantics; every access is routed
    to the conventional uncached buffer.
``UNCACHED_COMBINING``
    Device space whose stores are combined in the conditional store buffer;
    a ``swap`` to this space is the conditional flush.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.common.bitops import is_aligned
from repro.common.errors import ConfigError, MemoryError_

#: Page size used for attribute granularity (8 KB, like early SPARC MMUs).
DEFAULT_PAGE_SIZE = 8 * 1024

# Default physical map used by the system builder.
DRAM_BASE = 0x0000_0000
DRAM_SIZE = 256 * 1024 * 1024
IO_UNCACHED_BASE = 0x2000_0000
IO_UNCACHED_SIZE = 16 * 1024 * 1024
IO_COMBINING_BASE = 0x3000_0000
IO_COMBINING_SIZE = 16 * 1024 * 1024


class PageAttr(enum.Enum):
    """Memory attribute of a page, as encoded in its page-table entry."""

    CACHED = "cached"
    UNCACHED = "uncached"
    UNCACHED_COMBINING = "uncached_combining"

    @property
    def is_uncached(self) -> bool:
        return self is not PageAttr.CACHED


@dataclass(frozen=True)
class Region:
    """A contiguous physical range with a single attribute."""

    base: int
    size: int
    attr: PageAttr
    name: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError(f"region {self.name!r}: size must be positive")
        if self.base < 0:
            raise ConfigError(f"region {self.name!r}: negative base")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class AddressSpace:
    """The physical memory map: an ordered set of non-overlapping regions."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ConfigError("page size must be a positive power of two")
        self.page_size = page_size
        self._regions: List[Region] = []

    def map_region(
        self, base: int, size: int, attr: PageAttr, name: str = ""
    ) -> Region:
        """Add a region; base and size must be page-aligned and disjoint."""
        if not is_aligned(base, self.page_size) or not is_aligned(size, self.page_size):
            raise ConfigError(
                f"region {name!r} [{base:#x}, +{size:#x}] not page-aligned"
            )
        region = Region(base, size, attr, name)
        for existing in self._regions:
            if region.overlaps(existing):
                raise ConfigError(
                    f"region {name!r} overlaps {existing.name!r} at {existing.base:#x}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    def region_at(self, address: int) -> Optional[Region]:
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def attribute_of(self, address: int) -> PageAttr:
        """Attribute of the page holding ``address``.

        Raises :class:`MemoryError_` for unmapped addresses — the simulated
        kernels should never touch unmapped space, and a silent default would
        mask workload bugs.
        """
        region = self.region_at(address)
        if region is None:
            raise MemoryError_(f"access to unmapped address {address:#x}")
        return region.attr

    def check_span(self, address: int, size: int) -> Region:
        """Verify ``[address, address+size)`` lies inside one region."""
        region = self.region_at(address)
        if region is None or address + size > region.end:
            raise MemoryError_(
                f"access [{address:#x}, +{size}] crosses a region boundary"
            )
        return region

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)


def default_address_space(page_size: int = DEFAULT_PAGE_SIZE) -> AddressSpace:
    """The memory map every built system uses unless overridden:
    cached DRAM, an uncached I/O aperture, and an uncached-combining
    I/O aperture."""
    space = AddressSpace(page_size)
    space.map_region(DRAM_BASE, DRAM_SIZE, PageAttr.CACHED, "dram")
    space.map_region(IO_UNCACHED_BASE, IO_UNCACHED_SIZE, PageAttr.UNCACHED, "io")
    space.map_region(
        IO_COMBINING_BASE,
        IO_COMBINING_SIZE,
        PageAttr.UNCACHED_COMBINING,
        "io_combining",
    )
    return space
