"""Optional cache-refill bus occupancy.

The paper's bandwidth experiments assume "the bus is ... completely idle,
except for the uncached data transfers" (§4.3.1), and the hierarchy's
fixed 100-cycle miss charge matches that.  Enabling
``MemoryHierarchyConfig.refills_use_bus`` adds the *occupancy* side of
misses: each main-memory miss also queues a line-sized read transaction
that competes with the uncached stream for the bus (memory traffic gets
priority, as cache refills do on real buses).  The miss *latency* model is
unchanged — this knob quantifies how a non-idle bus squeezes uncached
store bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.common.stats import StatsCollector
from repro.bus.base import SystemBus
from repro.bus.transaction import BusTransaction, KIND_REFILL, KIND_WRITEBACK
from repro.memory.backing import BackingStore


class RefillEngine:
    """Queues line refills and drives them onto the bus."""

    def __init__(self, bus: SystemBus, line_size: int, stats: StatsCollector) -> None:
        self.bus = bus
        self.line_size = line_size
        self.stats = stats
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        #: Fault-injection plan; None (the default) means fault-free.
        self.faults = None
        self._pending: Deque[int] = deque()
        # Transient-stall bookkeeping: one fault draw per queue head, made
        # when the head is first considered for issue.
        self._head_drawn = False
        self._stall_until = -1

    def request(self, address: int) -> None:
        """Queue a refill for the line containing ``address``."""
        line = address - (address % self.line_size)
        self._pending.append(line)
        self.stats.bump("refill.requests")

    def tick_bus(self, bus_cycle: int) -> bool:
        """Issue the oldest pending refill if the bus allows.  Returns True
        when a transaction started (the uncached path then yields)."""
        if not self._pending:
            return False
        if self.faults is not None:
            if not self._head_drawn:
                # One draw per refill: does the memory controller hiccup?
                self._head_drawn = True
                stall = self.faults.refill_stall()
                if stall:
                    self._stall_until = bus_cycle + stall
                    self.stats.bump("faults.refill_stall")
                    if self.events is not None:
                        from repro.observability.events import FaultInjected

                        self.events.publish(
                            FaultInjected(
                                "refill_stall",
                                address=self._pending[0],
                                cycles=stall,
                            )
                        )
            if bus_cycle < self._stall_until:
                return False
        txn = BusTransaction(
            address=self._pending[0],
            size=self.line_size,
            kind=KIND_REFILL,
        )
        if not self.bus.try_issue(txn, bus_cycle):
            return False
        self._pending.popleft()
        self._head_drawn = False
        self._stall_until = -1
        self.stats.bump("refill.issued")
        return True

    @property
    def pending(self) -> int:
        return len(self._pending)


class WritebackEngine:
    """Queues dirty-victim line write-backs and drives them onto the bus.

    The counterpart of :class:`RefillEngine` for the other half of cache
    miss traffic: when the data cache evicts a dirty line (and
    ``MemoryConfig.bus_traffic`` is on), the line's bytes travel to main
    memory as a :data:`~repro.bus.transaction.KIND_WRITEBACK` burst.  The
    engine sits at arbiter priority class 2 — *below* refills and the
    cores — because a write-back is never on any operation's critical
    path: the victim's data was snapshotted at eviction time, so draining
    late only delays bus availability, never correctness.
    """

    def __init__(
        self,
        bus: SystemBus,
        line_size: int,
        stats: StatsCollector,
        backing: BackingStore,
    ) -> None:
        self.bus = bus
        self.line_size = line_size
        self.stats = stats
        self.backing = backing
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        self._pending: Deque[Tuple[int, bytes]] = deque()

    def request(self, address: int) -> None:
        """Queue a write-back of the line containing ``address``.

        The line's bytes are snapshotted now — eviction time — so the
        transaction carries what the cache held, however late the bus
        grants it.
        """
        line = address - (address % self.line_size)
        data = self.backing.read_bytes(line, self.line_size)
        self._pending.append((line, data))
        self.stats.bump("writeback.requests")

    def tick_bus(self, bus_cycle: int) -> bool:
        """Issue the oldest pending write-back if the bus allows.  Returns
        True when a transaction started (lower-priority traffic yields)."""
        if not self._pending:
            return False
        line, data = self._pending[0]
        txn = BusTransaction(
            address=line,
            size=self.line_size,
            kind=KIND_WRITEBACK,
            data=data,
        )
        if not self.bus.try_issue(txn, bus_cycle):
            return False
        self._pending.popleft()
        self.stats.bump("writeback.issued")
        return True

    @property
    def pending(self) -> int:
        return len(self._pending)
