"""The conventional uncached buffer, with optional hardware combining.

This models the spectrum of uncached store policies found in real processors
(paper §2, §4.1): from strictly non-combining (every store is its own bus
transaction) through PowerPC-620-style pairs up to R10000-style full-line
combining, controlled by the ``combine_block`` entry size.

Rules (paper §4.1):

* Entries are processed in FIFO order.
* A store may coalesce into an existing entry if its address falls in the
  same block and it does not bypass an earlier load or barrier.  Combining
  is only possible while the entry is still waiting in the buffer —
  combining is a race between the core filling and the bus draining.
* Loads block the head of the FIFO until their data returns (strong
  ordering), and a store never combines past a load.
* A partially filled entry drains as a sequence of naturally aligned
  power-of-two transactions (the bus alignment restriction).
"""

from __future__ import annotations

from typing import Callable, Deque, List, Optional, Tuple, Union
from collections import deque

from repro.common.bitops import block_base
from repro.common.config import UncachedBufferConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatsCollector
from repro.bus.base import SystemBus
from repro.bus.transaction import (
    BusTransaction,
    KIND_UNCACHED_LOAD,
    KIND_UNCACHED_STORE,
)
from repro.uncached.entry import LoadEntry, StoreEntry

Entry = Union[StoreEntry, LoadEntry]


class UncachedBuffer:
    """FIFO of pending uncached operations in front of the system bus."""

    def __init__(
        self,
        config: UncachedBufferConfig,
        bus: SystemBus,
        stats: StatsCollector,
        core_id: int = 0,
    ) -> None:
        from repro.uncached.policies import make_policy

        self.config = config
        self.bus = bus
        self.stats = stats
        self.core_id = core_id
        self.policy = make_policy(config)
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        self._entries: Deque[Entry] = deque()
        # Transactions of the head store entry, frozen at first issue.
        self._head_plan: Optional[List[Tuple[int, int, bytes]]] = None
        self._pending_load_txn: Optional[BusTransaction] = None

    # -- enqueue (called by the core, program order) ---------------------------

    def accept_store(self, address: int, data: bytes, sequence: int) -> bool:
        """Enqueue (or coalesce) a store; False when the buffer is full."""
        size = len(data)
        entry = self._combining_candidate(address, size)
        if entry is not None:
            entry.write(address, data)
            self.stats.bump("uncached.stores_combined")
            if self.events is not None:
                from repro.observability.events import CombineHit

                self.events.publish(CombineHit(address, size, self.core_id))
            return True
        if len(self._entries) >= self.config.depth:
            self.stats.bump("uncached.full_stalls")
            return False
        self.policy.on_new_entry(
            [e for e in self._entries if isinstance(e, StoreEntry)]
        )
        base = block_base(address, self.config.combine_block)
        new_entry = StoreEntry(base, self.config.combine_block, sequence)
        new_entry.write(address, data)
        self._entries.append(new_entry)
        self.stats.bump("uncached.entries_allocated")
        return True

    def accept_block_store(
        self, address: int, data: bytes, sequence: int
    ) -> bool:
        """Enqueue a VIS-style block store: a pre-combined full line that
        drains as one atomic burst, regardless of the combining policy.
        False when the buffer is full."""
        if len(self._entries) >= self.config.depth:
            self.stats.bump("uncached.full_stalls")
            return False
        entry = StoreEntry(address, len(data), sequence)
        entry.write(address, data)
        entry.closed = True  # nothing may coalesce into a block store
        self._entries.append(entry)
        self.stats.bump("uncached.block_stores")
        return True

    def accept_load(
        self,
        address: int,
        size: int,
        sequence: int,
        on_data: Callable[[bytes, int], None],
        kind: str = KIND_UNCACHED_LOAD,
    ) -> bool:
        """Enqueue a load (or a sync broadcast); False when full."""
        if len(self._entries) >= self.config.depth:
            self.stats.bump("uncached.full_stalls")
            return False
        self._entries.append(LoadEntry(address, size, sequence, on_data, kind=kind))
        return True

    def _combining_candidate(self, address: int, size: int) -> Optional[StoreEntry]:
        """Entry this store may coalesce into, honoring the no-bypass rules.

        Scanning newest to oldest: a load entry stops the search (a store
        may not bypass an earlier load), and so does any same-block entry
        we cannot merge into — merging past it into an older entry would
        reorder same-address stores, violating the in-order exactly-once
        contract.  Entries for other blocks may be bypassed.
        """
        if not self.config.combining:
            return None
        for entry in reversed(self._entries):
            if isinstance(entry, LoadEntry):
                return None
            if entry.covers(address):
                if self.policy.may_combine(entry, address, size):
                    return entry
                return None
        return None

    # -- drain (called on bus cycles) ------------------------------------------

    def tick_bus(self, bus_cycle: int) -> bool:
        """Try to make progress on the head entry.  Returns True if a
        transaction was started this cycle."""
        if not self._entries:
            return False
        head = self._entries[0]
        if isinstance(head, LoadEntry):
            return self._issue_load(head, bus_cycle)
        return self._issue_store_piece(head, bus_cycle)

    def _issue_load(self, head: LoadEntry, bus_cycle: int) -> bool:
        if head.issued:
            return False  # Waiting for data; FIFO is blocked.
        txn = BusTransaction(
            address=head.address,
            size=head.size,
            kind=head.kind,
            on_complete=lambda end, h=head: self._load_done(h, end),
            core_id=self.core_id,
        )
        if not self.bus.try_issue(txn, bus_cycle):
            return False
        head.issued = True
        self._pending_load_txn = txn
        return True

    def _load_done(self, head: LoadEntry, end_cycle: int) -> None:
        if not self._entries or self._entries[0] is not head:
            raise SimulationError("uncached load completed out of FIFO order")
        self._entries.popleft()
        txn = self._pending_load_txn
        self._pending_load_txn = None
        assert txn is not None and txn.result_data is not None
        head.on_data(txn.result_data, end_cycle)

    def _issue_store_piece(self, head: StoreEntry, bus_cycle: int) -> bool:
        # The transaction plan is only frozen once the bus accepts the first
        # piece; until then the entry keeps combining, so recompute.
        plan = self._head_plan
        if plan is None:
            if head.block_size != self.config.combine_block:
                # A block-store entry: always one full burst.
                plan = [(head.base, head.block_size, bytes(head.data))]
            else:
                plan = self.policy.plan(head)
            if not plan:
                raise SimulationError("store entry with no valid bytes at head")
        address, size, data = plan[0]
        txn = BusTransaction(
            address=address,
            size=size,
            kind=KIND_UNCACHED_STORE,
            data=data,
            core_id=self.core_id,
        )
        if not self.bus.try_issue(txn, bus_cycle):
            return False
        head.frozen = True  # No combining once transfer has begun.
        self._head_plan = plan[1:]
        if not self._head_plan:
            self._entries.popleft()
            self._head_plan = None
        return True

    # -- state queries ----------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when every operation has left the buffer (stores fully
        issued to the bus, loads completed).  This is what a membar waits
        for (paper §4.1)."""
        return not self._entries

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def head_sequence(self) -> Optional[int]:
        """Sequence number of the oldest entry (for bus arbitration)."""
        if not self._entries:
            return None
        return self._entries[0].sequence
