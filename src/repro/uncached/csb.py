"""The Conditional Store Buffer (paper §3.2) — the core contribution.

State: one cache line of data with per-byte validity, the line-aligned
address and process ID of the most recent combining store, and a *hit
counter* counting consecutive conflict-free stores.

Protocol:

* A **combining store** whose line address and process ID match the saved
  values is merged and increments the hit counter.  Any mismatch clears the
  buffer, installs the new store, and resets the counter to 1.  Stores may
  arrive in any order within the line — only the count matters for conflict
  detection.
* A **conditional flush** (the ``swap`` variant) supplies the expected
  counter value.  If the counter, address (optional check), and process ID
  all match, the buffered line is issued as a single atomic burst
  transaction and the swap returns the expected value; otherwise the buffer
  is cleared, the counter resets to zero, and the swap returns 0 so software
  can branch back and retry.

The buffer is always cleared before a new sequence starts filling it, so
unused words of the full-line burst are zero — the paper's defense against
leaking a previous process's data.

Line-buffer occupancy: after a successful flush, the line's contents are
handed to the system interface.  With one line buffer, further combining
stores stall until the burst has been accepted by the bus; a second line
buffer (``num_line_buffers=2``) lets the next sequence start filling while
the previous burst is still queued (paper §3.2's pipelining extension).
"""

from __future__ import annotations

import enum
from typing import Deque, Optional
from collections import deque

from repro.common.bitops import block_base
from repro.common.config import CSBConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatsCollector


class FlushResult(enum.Enum):
    """Outcome of a conditional flush attempt."""

    SUCCESS = "success"
    CONFLICT = "conflict"


class PendingBurst:
    """A flushed line awaiting hand-off to the bus.

    ``core_id`` records which core's flush produced the burst: with the CSB
    shared among several cores, only the owning core's uncached unit may
    hand the burst to the bus (the hand-off port is per core).
    """

    __slots__ = ("address", "data", "useful_bytes", "sequence", "core_id")

    def __init__(
        self,
        address: int,
        data: bytes,
        useful_bytes: int,
        sequence: int,
        core_id: int = 0,
    ):
        self.address = address
        self.data = data
        self.useful_bytes = useful_bytes
        self.sequence = sequence
        self.core_id = core_id


class ConditionalStoreBuffer:
    """Architectural model of the CSB (timing lives in the uncached unit)."""

    def __init__(self, config: CSBConfig, stats: StatsCollector) -> None:
        self.config = config
        self.stats = stats
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        #: Fault-injection plan; None (the default) means fault-free.
        self.faults = None
        self._line_addr: Optional[int] = None
        self._pid: Optional[int] = None
        self._data = bytearray(config.line_size)
        self._valid = [False] * config.line_size
        self._hit_counter = 0
        self._pending: Deque[PendingBurst] = deque()

    # -- occupancy ---------------------------------------------------------

    @property
    def line_buffer_free(self) -> bool:
        """True when a line buffer is available for combining stores.

        The active buffer is free as long as fewer than ``num_line_buffers``
        flushed lines are still waiting for the bus.
        """
        return len(self._pending) < self.config.num_line_buffers

    @property
    def pending_bursts(self) -> int:
        return len(self._pending)

    # -- combining store -----------------------------------------------------

    def store(self, address: int, data: bytes, pid: int, core_id: int = 0) -> None:
        """Accept one combining store (caller must check
        :attr:`line_buffer_free` first — hardware would simply stall)."""
        if not self.line_buffer_free:
            raise SimulationError("combining store while line buffer busy")
        size = len(data)
        line = block_base(address, self.config.line_size)
        if address + size > line + self.config.line_size:
            raise SimulationError(
                f"combining store [{address:#x}, +{size}] crosses a line boundary"
            )
        if line != self._line_addr or pid != self._pid:
            # Conflict (or first store of a sequence): clear and restart.
            self._clear_data()
            self._line_addr = line
            self._pid = pid
            self._hit_counter = 0
            self.stats.bump("csb.sequences_started")
            if self.events is not None:
                from repro.observability.events import SequenceStarted

                self.events.publish(SequenceStarted(line, pid, core_id))
        offset = address - line
        self._data[offset : offset + size] = data
        for i in range(offset, offset + size):
            self._valid[i] = True
        self._hit_counter += 1
        self.stats.bump("csb.stores")

    # -- conditional flush ----------------------------------------------------

    def conditional_flush(
        self, address: int, pid: int, expected: int, core_id: int = 0
    ) -> FlushResult:
        """Attempt to commit the combined sequence atomically."""
        if not self.line_buffer_free:
            raise SimulationError("conditional flush while line buffer busy")
        line = block_base(address, self.config.line_size)
        matches = (
            self._hit_counter == expected
            and self._hit_counter > 0
            and pid == self._pid
            and (not self.config.check_address or line == self._line_addr)
        )
        if matches and self.faults is not None and self.faults.csb_spurious_abort():
            # Injected transient conflict: the flush fails even though the
            # sequence was clean.  Software's retry loop (reissue the stores
            # and swap again) recovers — exactly the path the paper's
            # conditional protocol is designed around.
            self.stats.bump("faults.csb_spurious_abort")
            if self.events is not None:
                from repro.observability.events import FaultInjected

                self.events.publish(FaultInjected("csb_spurious_abort", address=line))
            matches = False
        if not matches:
            if self.events is not None:
                from repro.observability.events import ConflictAbort

                self.events.publish(
                    ConflictAbort(line, pid, expected, self._hit_counter, core_id)
                )
            self._clear_data()
            self._line_addr = None
            self._pid = None
            self._hit_counter = 0
            self.stats.bump("csb.flush_conflicts")
            return FlushResult.CONFLICT
        assert self._line_addr is not None
        useful = sum(self._valid)
        if self.events is not None:
            from repro.observability.events import FlushCommitted

            self.events.publish(
                FlushCommitted(self._line_addr, useful, self._hit_counter, core_id)
            )
        if self.config.pad_to_full_line:
            burst = PendingBurst(
                self._line_addr,
                bytes(self._data),
                useful,
                sequence=-1,
                core_id=core_id,
            )
        else:
            # Relaxed variant: issue only the covering aligned power-of-two
            # prefix that contains all valid bytes (for buses with multiple
            # burst sizes).  Data outside valid bytes is still zero.
            span = self._covering_span()
            burst = PendingBurst(
                self._line_addr + span[0],
                bytes(self._data[span[0] : span[0] + span[1]]),
                useful,
                sequence=-1,
                core_id=core_id,
            )
        self._pending.append(burst)
        self._clear_data()
        self._line_addr = None
        self._pid = None
        self._hit_counter = 0
        self.stats.bump("csb.flushes")
        return FlushResult.SUCCESS

    def _covering_span(self) -> tuple:
        """Smallest aligned power-of-two (offset, size) covering valid bytes."""
        first = self._valid.index(True)
        last = len(self._valid) - 1 - self._valid[::-1].index(True)
        size = 1
        while True:
            offset = (first // size) * size
            if offset + size > last:
                return (offset, size)
            size *= 2
            if size >= self.config.line_size:
                return (0, self.config.line_size)

    # -- hand-off to the system interface --------------------------------------

    def peek_burst(self) -> Optional[PendingBurst]:
        return self._pending[0] if self._pending else None

    def pop_burst(self) -> PendingBurst:
        if not self._pending:
            raise SimulationError("no pending CSB burst")
        return self._pending.popleft()

    # -- architectural state hand-off (tiered execution) ------------------------

    def export_state(self) -> tuple:
        """Architectural snapshot for the fast-forward tier.

        Only legal at a quiescent point: a flushed-but-unsent burst is
        timing state the functional tier cannot carry.
        """
        if self._pending:
            raise SimulationError("CSB state export with bursts in flight")
        return (
            self._line_addr,
            self._pid,
            bytes(self._data),
            tuple(self._valid),
            self._hit_counter,
        )

    def import_state(self, state: tuple) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        if self._pending:
            raise SimulationError("CSB state import with bursts in flight")
        line_addr, pid, data, valid, hit_counter = state
        if len(data) != self.config.line_size:
            raise SimulationError("CSB snapshot line size mismatch")
        self._line_addr = line_addr
        self._pid = pid
        self._data[:] = data
        self._valid[:] = valid
        self._hit_counter = hit_counter

    # -- introspection (tests, diagnostics) -------------------------------------

    @property
    def hit_counter(self) -> int:
        return self._hit_counter

    @property
    def line_addr(self) -> Optional[int]:
        return self._line_addr

    @property
    def pid(self) -> Optional[int]:
        return self._pid

    @property
    def valid_bytes(self) -> int:
        return sum(self._valid)

    def _clear_data(self) -> None:
        for i in range(len(self._data)):
            self._data[i] = 0
        for i in range(len(self._valid)):
            self._valid[i] = False
