"""The uncached unit: the processor-side interface to uncached space.

Routes every uncached operation the core issues (strictly in program order,
at or after retirement) by page attribute:

* ``UNCACHED`` stores and loads go to the conventional uncached buffer.
* ``UNCACHED_COMBINING`` stores go to the conditional store buffer; a
  ``swap`` to this space is the conditional flush.
* Uncached **loads always bypass the CSB** (paper §3.2: combined stores have
  not been committed yet, so loads are routed like ordinary uncached loads).

The unit also owns the CPU-cycle/bus-cycle boundary: the bus ticks once
every ``cpu_ratio`` CPU cycles, and issue arbitration between the uncached
buffer and a pending CSB burst is strictly by program order (sequence
numbers), preserving strong ordering across the two paths.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.common.config import CSBConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatsCollector
from repro.bus.base import SystemBus
from repro.bus.transaction import BusTransaction, KIND_CSB_FLUSH, KIND_SYNC
from repro.memory.layout import PageAttr
from repro.memory.tlb import AttributeTLB
from repro.observability.events import StoreIssued
from repro.uncached.buffer import UncachedBuffer
from repro.uncached.csb import ConditionalStoreBuffer, FlushResult

ValueCallback = Callable[[int, int], None]  # (value, cpu_cycle)


class UncachedUnit:
    """Glue between the core's retire stage and the uncached hardware."""

    def __init__(
        self,
        buffer: UncachedBuffer,
        csb: ConditionalStoreBuffer,
        bus: SystemBus,
        tlb: AttributeTLB,
        stats: StatsCollector,
        cpu_ratio: int,
        csb_config: CSBConfig,
        core_id: int = 0,
    ) -> None:
        self.buffer = buffer
        self.csb = csb
        self.bus = bus
        self.tlb = tlb
        self.stats = stats
        self.cpu_ratio = cpu_ratio
        self.csb_config = csb_config
        self.core_id = core_id
        #: Observability event bus; None (the default) means uninstrumented.
        #: The unit ticks first each CPU cycle, so it also advances the
        #: bus's shared clock (see :meth:`tick`).
        self.events = None
        self._sequence = 0
        self._now = 0
        #: Optional RefillEngine with bus priority over the uncached path.
        self.refill_engine = None
        #: Called with ``(address, size)`` when a CSB burst issues; wired
        #: to the data caches' invalidate-on-CSB-write coherence rule
        #: (None — the default — when the D-cache is disabled).
        self.csb_invalidate = None
        # (due_cpu_cycle, callback, value) for CSB flush results.
        self._scheduled: List[Tuple[int, ValueCallback, int]] = []
        # Sequence number attached to the oldest pending CSB burst.
        self._csb_burst_seqs: List[int] = []

    # -- issue API (called by the core at retirement, program order) -----------

    def issue_store(self, address: int, size: int, value: int, pid: int) -> bool:
        """Route an uncached store; False means the core must stall/retry."""
        attr = self.tlb.attribute_of(address)
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "big")
        if size > 8:
            # A VIS-style block store: a pre-combined atomic burst that
            # bypasses both the CSB and the combining machinery.
            if not attr.is_uncached:
                raise SimulationError(
                    f"block store to cached address {address:#x}"
                )
            accepted = self.buffer.accept_block_store(
                address, data, self._next_seq()
            )
            if accepted and self.events is not None:
                self.events.publish(StoreIssued(address, size, "block", self.core_id))
            return accepted
        if attr is PageAttr.UNCACHED_COMBINING:
            if not self.csb.line_buffer_free:
                self.stats.bump("csb.store_stalls")
                return False
            self.csb.store(address, data, pid, self.core_id)
            if self.events is not None:
                self.events.publish(StoreIssued(address, size, "csb", self.core_id))
            return True
        if attr is PageAttr.UNCACHED:
            accepted = self.buffer.accept_store(address, data, self._next_seq())
            if accepted and self.events is not None:
                self.events.publish(StoreIssued(address, size, "buffer", self.core_id))
            return accepted
        raise SimulationError(
            f"uncached unit received a cached store at {address:#x}"
        )

    def issue_load(
        self, address: int, size: int, callback: ValueCallback
    ) -> bool:
        """Route an uncached load; data returns through ``callback``."""
        attr = self.tlb.attribute_of(address)
        if not attr.is_uncached:
            raise SimulationError(f"uncached unit received a cached load at {address:#x}")

        def deliver(data: bytes, _bus_end: int) -> None:
            callback(int.from_bytes(data, "big"), self._now)

        return self.buffer.accept_load(address, size, self._next_seq(), deliver)

    def issue_swap(
        self,
        address: int,
        pid: int,
        expected: int,
        callback: ValueCallback,
    ) -> bool:
        """Route an uncached swap.

        In combining space this is the conditional flush: the result
        (``expected`` on success, 0 on conflict) is delivered after the CSB's
        flush latency.  In plain uncached space it is an atomic exchange at
        the device: a read transaction followed by a write of the register
        value (the device serializes, so the pair is atomic on a single bus).
        """
        attr = self.tlb.attribute_of(address)
        if attr is PageAttr.UNCACHED_COMBINING:
            if not self.csb.line_buffer_free:
                self.stats.bump("csb.flush_stalls")
                return False
            result = self.csb.conditional_flush(address, pid, expected, self.core_id)
            if result is FlushResult.SUCCESS:
                self._csb_burst_seqs.append(self._next_seq())
                value = expected
            else:
                value = 0
            due = self._now + self.csb_config.flush_latency
            self._scheduled.append((due, callback, value))
            return True
        if attr is PageAttr.UNCACHED:
            return self._issue_uncached_swap(address, expected, callback)
        raise SimulationError(f"uncached unit received a cached swap at {address:#x}")

    def _issue_uncached_swap(
        self, address: int, new_value: int, callback: ValueCallback
    ) -> bool:
        sequence = self._next_seq()

        def on_read(data: bytes, _bus_end: int) -> None:
            old = int.from_bytes(data, "big")
            payload = (new_value & ((1 << 64) - 1)).to_bytes(8, "big")
            if not self.buffer.accept_store(address, payload, self._next_seq()):
                raise SimulationError("uncached swap write overflowed the buffer")
            callback(old, self._now)

        return self.buffer.accept_load(address, 8, sequence, on_read)

    def issue_sync(self, address: int, callback: ValueCallback) -> bool:
        """A synchronization broadcast (a store-conditional's bus
        transaction): a doubleword round trip ordered with the uncached
        stream; the callback fires when the transaction completes."""

        def deliver(_data: bytes, _bus_end: int) -> None:
            callback(0, self._now)

        aligned = address - (address % 8)
        return self.buffer.accept_load(
            aligned, 8, self._next_seq(), deliver, kind=KIND_SYNC
        )

    def barrier_clear(self) -> bool:
        """True when a membar may graduate: the uncached buffer is empty
        (every earlier uncached transaction has left the buffer)."""
        return self.buffer.empty

    # -- clocking ---------------------------------------------------------------

    def tick(self, cpu_cycle: int) -> None:
        """Advance one CPU cycle: deliver due flush results; on bus-cycle
        boundaries, complete bus transactions and issue new ones.

        This is the standalone (single-initiator) clocking path.  An SMP
        :class:`~repro.sim.system.System` instead calls :meth:`tick_cpu`
        every CPU cycle and lets the shared
        :class:`~repro.bus.arbiter.BusArbiter` drive :meth:`tick_bus`.
        """
        self.tick_cpu(cpu_cycle)
        if cpu_cycle % self.cpu_ratio == 0:
            bus_cycle = cpu_cycle // self.cpu_ratio
            self.bus.tick(bus_cycle)
            if self.refill_engine is not None and self.refill_engine.tick_bus(
                bus_cycle
            ):
                return  # memory traffic won the bus this cycle
            self.tick_bus(bus_cycle)

    def tick_cpu(self, cpu_cycle: int) -> None:
        """CPU-side work for one cycle: deliver due flush results."""
        self._now = cpu_cycle
        if self.events is not None:
            # First component ticked each cycle: advance the shared event
            # clock so every event this cycle is stamped consistently.
            self.events.now = cpu_cycle
        if self._scheduled:
            due_now = [item for item in self._scheduled if item[0] <= cpu_cycle]
            if due_now:
                self._scheduled = [i for i in self._scheduled if i[0] > cpu_cycle]
                for _, callback, value in due_now:
                    callback(value, cpu_cycle)

    def tick_bus(self, bus_cycle: int) -> bool:
        """Program-order arbitration between the buffer and a CSB burst.

        Returns True when a bus transaction was started (the arbiter's
        grant signal: the bus accepts at most one transaction per cycle).
        """
        buffer_seq = self.buffer.head_sequence
        csb_seq = self._csb_burst_seqs[0] if self._csb_burst_seqs else None
        if buffer_seq is None and csb_seq is None:
            return False
        if csb_seq is None or (buffer_seq is not None and buffer_seq < csb_seq):
            return self.buffer.tick_bus(bus_cycle)
        return self._try_issue_csb_burst(bus_cycle)

    def _try_issue_csb_burst(self, bus_cycle: int) -> bool:
        burst = self.csb.peek_burst()
        if burst is None:
            raise SimulationError("CSB burst sequence recorded but no burst pending")
        if burst.core_id != self.core_id:
            # The shared CSB drains bursts in flush order; the head burst
            # belongs to another core's hand-off port, so stall until that
            # core has issued it.
            return False
        txn = BusTransaction(
            address=burst.address,
            size=len(burst.data),
            kind=KIND_CSB_FLUSH,
            data=burst.data,
            useful_bytes=burst.useful_bytes,
            core_id=self.core_id,
        )
        if self.bus.try_issue(txn, bus_cycle):
            self.csb.pop_burst()
            self._csb_burst_seqs.pop(0)
            if self.csb_invalidate is not None:
                self.csb_invalidate(txn.address, txn.size)
            return True
        return False

    def quiescent(self) -> bool:
        """No pending work anywhere (used by the system run loop)."""
        return (
            self.buffer.empty
            and self.csb.pending_bursts == 0
            and not self._scheduled
            and self.bus.drain_complete()
        )

    def _next_seq(self) -> int:
        self._sequence += 1
        return self._sequence
