"""Entries of the conventional uncached buffer.

A :class:`StoreEntry` covers one combining block: a block-aligned base, a
byte-validity mask, and the data bytes.  A :class:`LoadEntry` is a single
uncached load; it blocks the FIFO until its data returns, preserving the
strong ordering uncached accesses require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.common.bitops import block_base, decompose_aligned
from repro.common.errors import SimulationError


class StoreEntry:
    """One combining block's worth of pending store data."""

    __slots__ = (
        "base",
        "block_size",
        "data",
        "valid",
        "sequence",
        "frozen",
        "closed",
        "pieces",
    )

    def __init__(self, base: int, block_size: int, sequence: int) -> None:
        if base != block_base(base, block_size):
            raise SimulationError(f"entry base {base:#x} not block aligned")
        self.base = base
        self.block_size = block_size
        self.data = bytearray(block_size)
        self.valid = [False] * block_size
        self.sequence = sequence
        #: Set once the system interface starts transferring the entry;
        #: a frozen entry accepts no further combining.
        self.frozen = False
        #: Set by pattern-tracking policies (e.g. R10000) once the access
        #: pattern broke; a closed entry accepts no further combining.
        self.closed = False
        #: The constituent stores, as (absolute address, size), in arrival
        #: order — pattern policies and single-beat drains need them.
        self.pieces: List[Tuple[int, int]] = []

    def covers(self, address: int) -> bool:
        return self.base <= address < self.base + self.block_size

    def overlaps(self, address: int, size: int) -> bool:
        """True if any byte of [address, address+size) is already valid."""
        start = address - self.base
        return any(self.valid[start : start + size])

    def can_accept(self, address: int, size: int) -> bool:
        """A store may coalesce here: same block, not frozen, no overlap.

        Overlapping uncached stores must each reach the device (they may
        have side effects), so overlap forbids merging.
        """
        if self.frozen or not self.covers(address):
            return False
        if address + size > self.base + self.block_size:
            return False
        return not self.overlaps(address, size)

    def write(self, address: int, data: bytes) -> None:
        if not self.can_accept(address, len(data)):
            raise SimulationError(
                f"cannot coalesce store at {address:#x} into entry {self.base:#x}"
            )
        offset = address - self.base
        self.data[offset : offset + len(data)] = data
        for i in range(offset, offset + len(data)):
            self.valid[i] = True
        self.pieces.append((address, len(data)))

    @property
    def valid_bytes(self) -> int:
        return sum(self.valid)

    @property
    def last_end(self) -> Optional[int]:
        """Absolute address just past the most recent store (None if empty)."""
        if not self.pieces:
            return None
        address, size = self.pieces[-1]
        return address + size

    @property
    def is_full_contiguous(self) -> bool:
        """True when the whole block is valid."""
        return all(self.valid)

    def runs(self) -> List[Tuple[int, int]]:
        """Contiguous valid runs as (absolute address, length) pairs."""
        result: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for i, bit in enumerate(self.valid + [False]):
            if bit and start is None:
                start = i
            elif not bit and start is not None:
                result.append((self.base + start, i - start))
                start = None
        return result

    def transactions(self) -> List[Tuple[int, int, bytes]]:
        """Decompose into naturally aligned power-of-two (addr, size, data)
        transactions, in address order."""
        pieces: List[Tuple[int, int, bytes]] = []
        for run_addr, run_len in self.runs():
            for addr, size in decompose_aligned(run_addr, run_len, self.block_size):
                offset = addr - self.base
                pieces.append((addr, size, bytes(self.data[offset : offset + size])))
        return pieces


@dataclass
class LoadEntry:
    """A single pending uncached load (or the read half of an uncached
    swap, or a synchronization broadcast)."""

    address: int
    size: int
    sequence: int
    on_data: Callable[[bytes, int], None] = field(repr=False)
    issued: bool = False
    kind: str = "uncached_load"
