"""Hardware combining policies for the uncached buffer.

The paper's baselines span the uncached store policies of real processors
(§2, §4.1).  Three are modeled faithfully:

:class:`BlockCombining`
    The paper's generic model: a store coalesces into any entry covering
    its block (subject to the ordering rules); a partially filled entry
    drains as naturally aligned power-of-two transactions.  With an
    8-byte block this degenerates to no combining at all.

:class:`R10000Accelerated`
    The MIPS R10000 uncached-accelerated buffer (§6): it "detects
    sequential access patterns and combines subsequent stores into a
    complete cache line if possible", "stops combining when it receives a
    store that does not match the current access pattern", and "issues a
    burst transaction only if an entire cache line could be combined,
    otherwise a series of single-beat transfers is used".

:class:`PowerPC620Pairs`
    The PowerPC 620 (§2): "combines up to two uncached stores of the same
    size to consecutive addresses into a single bus transaction" — and
    only when the pair is naturally aligned for the combined size.
"""

from __future__ import annotations

import abc
from typing import List, Tuple

from repro.common.config import UncachedBufferConfig
from repro.common.errors import ConfigError
from repro.uncached.entry import StoreEntry

Piece = Tuple[int, int, bytes]


class CombiningPolicy(abc.ABC):
    """How stores coalesce into entries and how entries hit the bus."""

    #: short identifier used in configs and reports
    name: str = "abstract"

    def __init__(self, entry_block: int) -> None:
        self.entry_block = entry_block

    @abc.abstractmethod
    def may_combine(self, entry: StoreEntry, address: int, size: int) -> bool:
        """May this store coalesce into ``entry``?  (The buffer has already
        checked the ordering rules; this is the policy-specific pattern
        check.)"""

    @abc.abstractmethod
    def plan(self, entry: StoreEntry) -> List[Piece]:
        """Decompose a draining entry into bus transactions."""

    def on_new_entry(self, older_entries: List[StoreEntry]) -> None:
        """Hook invoked when a store failed to combine and a new entry was
        allocated; pattern-tracking policies close the broken entries."""


class BlockCombining(CombiningPolicy):
    """The paper's generic combining model (and the non-combining case)."""

    def __init__(self, entry_block: int) -> None:
        super().__init__(entry_block)
        self.name = "none" if entry_block <= 8 else f"combine{entry_block}"

    def may_combine(self, entry: StoreEntry, address: int, size: int) -> bool:
        if self.entry_block <= 8:
            return False
        return entry.can_accept(address, size)

    def plan(self, entry: StoreEntry) -> List[Piece]:
        return entry.transactions()


class R10000Accelerated(CombiningPolicy):
    """Strictly sequential pattern detection; all-or-nothing bursts."""

    name = "r10000"

    def may_combine(self, entry: StoreEntry, address: int, size: int) -> bool:
        if entry.closed or not entry.can_accept(address, size):
            return False
        # Only the exact next sequential address continues the pattern.
        return address == entry.last_end

    def plan(self, entry: StoreEntry) -> List[Piece]:
        if entry.is_full_contiguous:
            return [(entry.base, entry.block_size, bytes(entry.data))]
        # Pattern incomplete: one single-beat transfer per original store.
        pieces: List[Piece] = []
        for address, size in entry.pieces:
            offset = address - entry.base
            pieces.append((address, size, bytes(entry.data[offset : offset + size])))
        return pieces

    def on_new_entry(self, older_entries: List[StoreEntry]) -> None:
        # A store that broke the pattern stops all previous combining.
        for entry in older_entries:
            entry.closed = True


class PowerPC620Pairs(CombiningPolicy):
    """At most two same-size consecutive stores per transaction."""

    name = "ppc620"

    def __init__(self, entry_block: int = 16) -> None:
        if entry_block != 16:
            raise ConfigError("the PowerPC 620 pairs doublewords: block is 16")
        super().__init__(entry_block)

    def may_combine(self, entry: StoreEntry, address: int, size: int) -> bool:
        if entry.closed or not entry.can_accept(address, size):
            return False
        if len(entry.pieces) != 1:
            return False
        prev_address, prev_size = entry.pieces[0]
        if prev_size != size or address != prev_address + size:
            return False
        # The combined transaction must be naturally aligned.
        return prev_address % (2 * size) == 0

    def plan(self, entry: StoreEntry) -> List[Piece]:
        return entry.transactions()


def make_policy(config: UncachedBufferConfig) -> CombiningPolicy:
    """Build the policy named by ``config.policy``."""
    if config.policy == "block":
        return BlockCombining(config.combine_block)
    if config.policy == "r10000":
        return R10000Accelerated(config.combine_block)
    if config.policy == "ppc620":
        return PowerPC620Pairs(config.combine_block)
    raise ConfigError(f"unknown combining policy {config.policy!r}")
