"""Uncached access machinery: the conventional uncached buffer with optional
hardware combining (the paper's baselines), the conditional store buffer
(the paper's contribution), and the unit that routes uncached operations to
one or the other by page attribute.
"""

from repro.uncached.entry import LoadEntry, StoreEntry
from repro.uncached.buffer import UncachedBuffer
from repro.uncached.csb import ConditionalStoreBuffer, FlushResult
from repro.uncached.unit import UncachedUnit

__all__ = [
    "ConditionalStoreBuffer",
    "FlushResult",
    "LoadEntry",
    "StoreEntry",
    "UncachedBuffer",
    "UncachedUnit",
]
