"""repro — an execution-driven simulation study of the Conditional Store
Buffer (Schaelicke & Davis, *Improving I/O Performance with a Conditional
Store Buffer*, MICRO 1998).

Quick start (the stable facade, :mod:`repro.api`)::

    from repro import simulate, SystemConfig
    from repro.workloads import store_kernel_csb

    result = simulate(SystemConfig(), store_kernel_csb(256, line_size=64))
    print(f"{result.store_bandwidth:.2f} bytes/bus-cycle")

Package layout:

* :mod:`repro.common` — configuration, statistics, tables, errors
* :mod:`repro.isa` — the SPARC-flavoured instruction set and assembler
* :mod:`repro.memory` — address space, page attributes, caches
* :mod:`repro.bus` — multiplexed and split system-bus models
* :mod:`repro.uncached` — the uncached buffer and the CSB
* :mod:`repro.cpu` — the out-of-order core
* :mod:`repro.devices` — burst sink, NIC, DMA engine
* :mod:`repro.sim` — system assembly and scheduling
* :mod:`repro.workloads` — microbenchmark kernel generators
* :mod:`repro.observability` — structured event tracing and profiling
* :mod:`repro.evaluation` — figure-reproduction harness
* :mod:`repro.api` — the stable facade re-exported here
"""

from repro.api import (
    RunResult,
    experiments,
    run_campaign,
    run_experiment,
    simulate,
)
from repro.evaluation.campaign import CampaignManifest, JobSpec
from repro.common.config import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    CSBConfig,
    MemoryConfig,
    MemoryHierarchyConfig,
    SamplingConfig,
    SystemConfig,
    UncachedBufferConfig,
)
from repro.common.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.sim.system import System

__version__ = "1.0.0"

__all__ = [
    "BusConfig",
    "CSBConfig",
    "CacheConfig",
    "CampaignManifest",
    "CoreConfig",
    "JobSpec",
    "MemoryConfig",
    "MemoryHierarchyConfig",
    "Program",
    "SamplingConfig",
    "ReproError",
    "RunResult",
    "System",
    "SystemConfig",
    "UncachedBufferConfig",
    "assemble",
    "experiments",
    "run_campaign",
    "run_experiment",
    "simulate",
    "__version__",
]
